"""Property tests for the derived (synthesized-maintenance) strategy.

The equivalence contract is the same one the memo engines answer to —
after ANY mutation sequence the engine returns exactly what from-scratch
execution returns — but the mechanism under test is different: here the
value is maintained by per-mutator delta rules synthesized by the fold
classifier, with full-fold rebuilds on anything the rules cannot absorb.

Each hypothesis stateful machine drives a strict ``derived`` engine and a
``hybrid`` engine in lock-step against ``entry.original``, deliberately
mixing:

* point mutations the delta rules absorb in O(1),
* structural events (heap ``_grow``, hash-table rehash, whole-vector
  shifts) that must transactionally invalidate back to a full fold, and
* mid-trace fault injection — ``engine.invalidate()`` — the external
  analogue of a failed delta, forcing the rebuild path at arbitrary
  trace positions.

The teardown asserts the strict engine really ran derived (and actually
took both the delta and the full-fold path), so a silent fallback to the
memo graph cannot vacuously pass the machines.
"""

from __future__ import annotations

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DittoEngine, reset_tracking
from repro.structures import (
    BinaryHeap,
    HashTable,
    IntVector,
    heap_min,
    table_occupancy,
    vector_digest,
    vector_sum,
)

_MACHINE_SETTINGS = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)


def _outcome(fn, args):
    """Run ``fn`` and capture its outcome — value or exception — so the
    machines can demand *exception* parity too (``vector_digest`` on an
    empty vector raises IndexError from scratch, and derived must match,
    not mask it)."""
    try:
        return ("value", fn(*args))
    except Exception as exc:  # noqa: BLE001 — parity includes any error
        return ("error", type(exc).__name__, exc.args)


class _StrategyMachine(RuleBasedStateMachine):
    """Common scaffolding: strict derived + hybrid engines vs scratch."""

    entry = None  # set by subclasses

    def _setup_engines(self):
        reset_tracking()
        self.derived = DittoEngine(
            self.entry, strategy="derived", recursion_limit=None
        )
        self.hybrid = DittoEngine(
            self.entry, strategy="hybrid", recursion_limit=None
        )

    def teardown(self):
        # The machine proves nothing if the strict engine quietly served
        # memo results: pin the active strategy and demand the delta path
        # actually fired at least once per example run.
        assert self.derived.active_strategy == "derived"
        stats = self.derived.stats
        assert stats.derived_runs > 0
        assert stats.derived_full_folds > 0  # first bind counts as one
        self.derived.close()
        self.hybrid.close()
        reset_tracking()

    def check_args(self):
        raise NotImplementedError

    @invariant()
    def derived_equals_scratch(self):
        args = self.check_args()
        expected = _outcome(self.entry.original, args)
        got_derived = _outcome(self.derived.run, args)
        got_hybrid = _outcome(self.hybrid.run, args)
        assert got_derived == expected, (got_derived, expected)
        assert got_hybrid == expected, (got_hybrid, expected)

    @rule()
    def invalidate_mid_trace(self):
        """Fault injection: discard the maintained terms outright.  The
        next run must rebind via a full fold and still agree."""
        self.derived.invalidate()

    @rule()
    def reenter_after_close_of_nothing(self):
        """Invalidate is idempotent; doubling it must not skew stats or
        correctness."""
        self.derived.invalidate()
        self.derived.invalidate()


class VectorSumMachine(_StrategyMachine):
    """``vector_sum``: the textbook sum fold over a growable int vector."""

    entry = vector_sum

    @initialize()
    def setup(self):
        self._setup_engines()
        self.vec = IntVector([])

    def check_args(self):
        return (self.vec,)

    @rule(value=st.integers(-50, 50))
    def append(self, value):
        if len(self.vec) < 120:
            self.vec.append(value)

    @precondition(lambda self: len(self.vec))
    @rule(index=st.integers(0, 500), value=st.integers(-50, 50))
    def set_point(self, index, value):
        self.vec[index % len(self.vec)] = value

    @precondition(lambda self: len(self.vec))
    @rule()
    def pop_end(self):
        self.vec.pop()

    @precondition(lambda self: len(self.vec))
    @rule()
    def pop_front(self):
        """Shifts every surviving slot: a range write the delta rules
        must refuse, falling back to a full fold."""
        self.vec.pop(0)

    @rule(value=st.integers(-50, 50))
    def insert_front(self, value):
        if len(self.vec) < 120:
            self.vec.insert(0, value)


class VectorDigestMachine(VectorSumMachine):
    """``vector_digest``: sum fold composed with a scalar tail read —
    the multi-term shape, same mutation surface."""

    entry = vector_digest


class HeapMinMachine(_StrategyMachine):
    """``heap_min``: a min fold over the heap's backing array, crossing
    ``_grow`` capacity doublings (container rebinding) and raw slot
    corruption."""

    entry = heap_min

    @initialize()
    def setup(self):
        self._setup_engines()
        self.heap = BinaryHeap(capacity=4)
        self.size = 0

    def check_args(self):
        return (self.heap,)

    @rule(value=st.integers(-30, 70))
    def push(self, value):
        self.heap.push(value)
        self.size += 1

    @precondition(lambda self: self.size)
    @rule()
    def pop(self):
        self.heap.pop()
        self.size -= 1

    @precondition(lambda self: self.size)
    @rule(index=st.integers(0, 200), value=st.integers(-30, 70))
    def corrupt(self, index, value):
        self.heap.corrupt(index % self.size, value)


class TableOccupancyMachine(_StrategyMachine):
    """``table_occupancy``: a sum fold over bucket heads, crossing
    rehashes (every bucket location rebinds) and chain corruption."""

    entry = table_occupancy

    @initialize()
    def setup(self):
        self._setup_engines()
        self.table = HashTable(capacity=4)
        self.keys: set[int] = set()

    def check_args(self):
        return (self.table,)

    @rule(key=st.integers(0, 60))
    def put(self, key):
        self.table.put(key, key)
        self.keys.add(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def remove(self, data):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        self.table.remove(key)
        self.keys.discard(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def corrupt_then_purge(self, data):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        if self.table.corrupt(key):
            args = self.check_args()
            expected = _outcome(self.entry.original, args)
            assert _outcome(self.derived.run, args) == expected
            self.table.purge(key)
            self.keys.discard(key)


TestVectorSumMachine = VectorSumMachine.TestCase
TestVectorSumMachine.settings = _MACHINE_SETTINGS
TestVectorDigestMachine = VectorDigestMachine.TestCase
TestVectorDigestMachine.settings = _MACHINE_SETTINGS
TestHeapMinMachine = HeapMinMachine.TestCase
TestHeapMinMachine.settings = _MACHINE_SETTINGS
TestTableOccupancyMachine = TableOccupancyMachine.TestCase
TestTableOccupancyMachine.settings = _MACHINE_SETTINGS
