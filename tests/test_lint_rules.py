"""Per-rule positive/negative coverage of the ``repro.lint`` catalogue.

Every shipped DIT rule gets at least one fixture (or inline temp file)
that *triggers* it and at least one near-miss that must *not* — the
negatives pin down the rules' boundaries (construction-time bypasses,
private fields, constant-name setattr, registered-pure helpers, ...).
"""

from __future__ import annotations

import os

from repro.lint import ERROR, NOTE, RULES, WARNING, Diagnostic, LintReport
from repro.lint.modlint import lint_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def lint_fixture(*names: str) -> LintReport:
    return lint_paths([fixture(name) for name in names])


def diags(report: LintReport, code: str) -> list[Diagnostic]:
    return [d for d in report.diagnostics if d.code == code]


# Catalogue shape. -------------------------------------------------------------


def test_rule_catalogue_is_stable():
    assert set(RULES) == {
        "DIT001", "DIT002", "DIT003", "DIT004", "DIT005", "DIT006",
        "DIT007", "DIT008", "DIT101", "DIT102", "DIT103", "DIT104",
        "DIT105", "DIT201", "DIT202", "DIT203", "DIT204",
    }
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.severity in (ERROR, WARNING, NOTE)
        assert rule.name and rule.summary
        # --explain needs depth for every rule, not just the new family.
        assert rule.rationale and rule.example


def test_diagnostic_defaults_severity_from_rule():
    diag = Diagnostic("DIT001", "boom", file="x.py", line=3)
    assert diag.severity == ERROR
    assert "DIT001" in diag.format() and "x.py:3" in diag.format()


def test_diagnostic_severity_override():
    diag = Diagnostic("DIT101", "soft", severity=WARNING)
    assert diag.severity == WARNING


# The clean fixture is the shared negative for the whole catalogue. ------------


def test_clean_fixture_has_no_findings():
    report = lint_fixture("clean.py")
    # Gating-clean: no soundness findings.  The recursive check does get a
    # DIT2xx strategy-classification note (pointer recursion is not an
    # index fold), which is informational and never gates.
    assert report.errors == [] and report.warnings == []
    assert {d.code for d in report.notes} <= {"DIT201", "DIT202", "DIT203"}
    assert report.ok
    assert report.files_linted == 1
    assert report.exit_code() == 0
    assert report.exit_code(strict_warnings=True) == 0


def test_fixture_tree_reports_every_rule():
    report = lint_paths([FIXTURES])
    assert report.codes() == set(RULES)
    assert not report.ok
    assert report.exit_code() == 1


# DIT001 — impure helper. ------------------------------------------------------


def test_dit001_impure_helper_flagged():
    report = lint_fixture("impure_helper.py")
    found = diags(report, "DIT001")
    assert len(found) == 1
    assert found[0].severity == ERROR
    assert found[0].function == "bump"
    assert "side effects" in found[0].message


def test_dit001_pure_helper_not_flagged():
    assert not diags(lint_fixture("clean.py"), "DIT001")


# DIT002 — unverifiable call. --------------------------------------------------


def test_dit002_unresolved_call_flagged():
    report = lint_fixture("unverifiable.py")
    found = diags(report, "DIT002")
    assert found and found[0].severity == WARNING
    assert "mystery_predicate" in found[0].message


def test_dit002_resolved_helper_not_flagged():
    assert not diags(lint_fixture("clean.py"), "DIT002")


# DIT003 — untracked helper read. ----------------------------------------------


def test_dit003_deep_read_flagged():
    report = lint_fixture("deep_helper.py")
    found = diags(report, "DIT003")
    assert len(found) == 1
    assert found[0].severity == ERROR
    assert found[0].function == "left_value"


def test_dit003_depth1_read_not_flagged():
    assert not diags(lint_fixture("clean.py"), "DIT003")


# DIT004 — mutable global. -----------------------------------------------------


def test_dit004_mutable_global_flagged():
    report = lint_fixture("mutable_global.py")
    found = diags(report, "DIT004")
    assert len(found) == 1
    assert found[0].severity == ERROR
    assert "LIMITS" in found[0].message


def test_dit004_immutable_global_not_flagged():
    # mutable_global.py also reads the immutable SCALE constant: exactly
    # one finding means SCALE passed.
    report = lint_fixture("mutable_global.py")
    assert len(diags(report, "DIT004")) == 1
    assert not diags(lint_fixture("clean.py"), "DIT004")


# DIT005 — unverifiable method. ------------------------------------------------


def test_dit005_unregistered_method_flagged():
    report = lint_fixture("unverifiable.py")
    found = diags(report, "DIT005")
    assert found and found[0].severity == WARNING
    assert ".digest()" in found[0].message


def test_dit005_registered_method_not_flagged(tmp_path):
    source = (
        "from repro import TrackedObject, check, register_pure_method\n"
        "\n"
        "class Item(TrackedObject):\n"
        "    def __init__(self, value):\n"
        "        self.value = value\n"
        "    def digest(self):\n"
        "        return hash(self.value)\n"
        "\n"
        "register_pure_method(Item, 'digest')\n"
        "\n"
        "@check\n"
        "def item_ok(item):\n"
        "    return item is None or item.digest() >= 0\n"
    )
    path = tmp_path / "registered_method.py"
    path.write_text(source)
    assert not diags(lint_paths([str(path)]), "DIT005")


# DIT008 — unattributable tracked-receiver method. -----------------------------


def test_dit008_deep_reading_method_flagged():
    report = lint_fixture("unattributable_method.py")
    found = diags(report, "DIT008")
    assert len(found) == 1
    assert found[0].severity == ERROR
    assert found[0].function == "Wallet.owner_name"
    assert "cannot attribute" in found[0].message


def test_dit008_depth1_method_not_flagged(tmp_path):
    source = (
        "from repro import TrackedObject, check, register_pure_method\n"
        "\n"
        "class Item(TrackedObject):\n"
        "    def __init__(self, value):\n"
        "        self.value = value\n"
        "    def digest(self):\n"
        "        return hash(self.value)\n"
        "\n"
        "register_pure_method(Item, 'digest')\n"
        "\n"
        "@check\n"
        "def item_ok(item):\n"
        "    return item is None or item.digest() >= 0\n"
    )
    path = tmp_path / "depth1_method.py"
    path.write_text(source)
    assert not diags(lint_paths([str(path)]), "DIT008")


def test_dit008_untracked_class_not_flagged(tmp_path):
    # Methods on untracked receivers have no barrier-visible heap to
    # misattribute; only tracked classes gate.
    source = (
        "from repro import check, register_pure_method\n"
        "\n"
        "class Plain:\n"
        "    def deep(self):\n"
        "        return self.inner.value\n"
        "\n"
        "register_pure_method(Plain, 'deep')\n"
        "\n"
        "@check\n"
        "def plain_ok(p):\n"
        "    return p is None or p.deep() >= 0\n"
    )
    path = tmp_path / "untracked_method.py"
    path.write_text(source)
    assert not diags(lint_paths([str(path)]), "DIT008")


# DIT006 — registered-pure lie. ------------------------------------------------


def test_dit006_registered_lie_flagged():
    report = lint_fixture("registered_lie.py")
    found = diags(report, "DIT006")
    assert len(found) == 1
    assert found[0].severity == ERROR
    assert found[0].function == "absorb"
    # The registration upgrades the finding: no duplicate DIT001.
    assert not diags(report, "DIT001")


def test_dit006_registered_truthful_helper_not_flagged():
    assert not diags(lint_fixture("clean.py"), "DIT006")


# DIT007 — check-restriction violation. ----------------------------------------


def test_dit007_inadmissible_check_flagged():
    report = lint_fixture("check_violation.py")
    found = diags(report, "DIT007")
    assert found and found[0].severity == ERROR
    assert found[0].function == "normalize_and_check"
    assert found[0].line == 19  # the offending store, not the def line


def test_dit007_unparseable_file_flagged(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def oops(:\n")
    report = lint_paths([str(path)])
    found = diags(report, "DIT007")
    assert found and "cannot be parsed" in found[0].message


def test_dit007_admissible_check_not_flagged():
    assert not diags(lint_fixture("clean.py"), "DIT007")


# DIT101 — setattr bypass. -----------------------------------------------------


def test_dit101_monitored_field_is_error():
    report = lint_fixture("bypass_setattr.py")
    found = diags(report, "DIT101")
    by_function = {d.function: d for d in found}
    assert by_function["bypass_value"].severity == ERROR
    assert by_function["bypass_color"].severity == WARNING


def test_dit101_init_and_private_fields_exempt():
    report = lint_fixture("bypass_setattr.py")
    functions = {d.function for d in diags(report, "DIT101")}
    assert "Cell.__init__" not in functions  # construction precedes tracking
    assert "bump_generation" not in functions  # _private bookkeeping


# DIT102 — __dict__ store. -----------------------------------------------------


def test_dit102_dict_stores_flagged():
    report = lint_fixture("dict_store.py")
    found = diags(report, "DIT102")
    assert {d.function for d in found} == {"poke", "merge"}
    assert all(d.severity == ERROR for d in found)


def test_dit102_plain_attribute_store_not_flagged():
    assert not diags(lint_fixture("clean.py"), "DIT102")


# DIT103 — dynamic setattr. ----------------------------------------------------


def test_dit103_dynamic_name_flagged_constant_name_not():
    report = lint_fixture("dynamic_setattr.py")
    found = diags(report, "DIT103")
    assert {d.function for d in found} == {"set_field"}
    assert found[0].severity == WARNING


# DIT104 — raw backing alias. --------------------------------------------------


def test_dit104_mutation_is_error_alias_is_warning():
    report = lint_fixture("alias_mutation.py")
    by_function = {d.function: d for d in diags(report, "DIT104")}
    assert by_function["sneak_append"].severity == ERROR
    assert by_function["sneak_store"].severity == ERROR
    assert by_function["grab"].severity == WARNING
    assert "peek_len" not in by_function  # plain reads are fine


# DIT105 — untracked monitored store. ------------------------------------------


def test_dit105_untracked_class_flagged():
    report = lint_fixture("untracked_store.py")
    found = diags(report, "DIT105")
    assert {d.function for d in found} == {"PlainCache.refresh"}
    assert found[0].severity == WARNING


def test_dit105_tracked_class_and_init_not_flagged():
    report = lint_fixture("untracked_store.py")
    functions = {d.function for d in diags(report, "DIT105")}
    assert "Tracked.set" not in functions
    assert "PlainCache.__init__" not in functions


# noqa suppression. ------------------------------------------------------------


def test_noqa_suppresses_specific_code_and_bare():
    report = lint_fixture("noqa_suppressed.py")
    assert report.diagnostics == []


def test_noqa_does_not_suppress_other_codes(tmp_path):
    source = (
        "from repro import TrackedObject, check\n"
        "\n"
        "class C(TrackedObject):\n"
        "    def __init__(self, value):\n"
        "        self.value = value\n"
        "\n"
        "@check\n"
        "def ok(c):\n"
        "    return c is None or c.value >= 0\n"
        "\n"
        "def poke(c, v):\n"
        "    object.__setattr__(c, 'value', v)  # noqa: DIT102\n"
    )
    path = tmp_path / "wrong_noqa.py"
    path.write_text(source)
    report = lint_paths([str(path)])
    assert diags(report, "DIT101")  # DIT102 suppression does not apply


# Report model. ----------------------------------------------------------------


def test_report_sorting_and_counts():
    report = lint_paths([FIXTURES])
    ordered = report.sorted()
    assert ordered == sorted(
        ordered, key=lambda d: (d.file or "", d.line)
    )
    assert (
        len(report.errors) + len(report.warnings) + len(report.notes)
        == len(report)
    )
    text = report.format_text()
    summary = (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
    )
    if report.notes:
        summary += f", {len(report.notes)} note(s)"
    assert text.endswith(summary)


def test_exit_code_strict_warnings():
    warn_only = LintReport([Diagnostic("DIT103", "dynamic")])
    assert warn_only.exit_code() == 0
    assert warn_only.exit_code(strict_warnings=True) == 1
    assert LintReport().exit_code(strict_warnings=True) == 0


def test_to_json_roundtrip():
    import json

    report = lint_fixture("impure_helper.py")
    payload = json.loads(report.to_json())
    assert payload["version"] == 1
    assert payload["files_linted"] == 1
    assert payload["summary"]["errors"] == len(report.errors)
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "DIT001" in codes


# DIT2xx — derived-strategy fold classification. -------------------------------


def test_dit201_admissible_fold_noted():
    report = lint_fixture("fold_admissible.py")
    found = diags(report, "DIT201")
    assert len(found) == 1
    assert found[0].severity == NOTE
    assert found[0].function == "running_total"
    assert "sum fold" in found[0].message
    assert "O(1)" in found[0].message
    # Positive classification only: no rejection codes.
    assert not diags(report, "DIT202")
    assert not diags(report, "DIT203")
    assert not diags(report, "DIT204")
    # Notes never gate, even under --strict-warnings.
    assert report.exit_code(strict_warnings=True) == 0


def test_dit202_order_dependent_fold_rejected():
    report = lint_fixture("fold_order_dependent.py")
    found = diags(report, "DIT202")
    assert len(found) == 1
    assert found[0].severity == NOTE
    assert found[0].function == "digit_value"
    # The why-not names the offending combine, not a generic shrug.
    assert found[0].message
    assert not diags(report, "DIT201")
    assert report.exit_code(strict_warnings=True) == 0


def test_dit203_opaque_helper_call_rejected():
    report = lint_fixture("fold_opaque_helper.py")
    found = diags(report, "DIT203")
    assert len(found) == 1
    assert found[0].severity == NOTE
    assert found[0].function == "all_chains_ok"
    assert not diags(report, "DIT201")
    # The helper itself is registered pure with depth-1 reads: the
    # rejection is strategy classification, not a soundness finding.
    assert report.errors == []


def test_dit204_float_sum_warned():
    report = lint_fixture("fold_float_sum.py")
    found = diags(report, "DIT204")
    assert len(found) == 1
    assert found[0].severity == WARNING
    assert found[0].function == "half_weight_sum"
    assert not diags(report, "DIT201")
    # A genuine warning: gates only under --strict-warnings.
    assert report.exit_code() == 0
    assert report.exit_code(strict_warnings=True) == 1


def test_dit2xx_nonrecursive_checks_are_not_classified():
    """A check with no self-call is not a fold candidate: the classifier
    stays silent instead of rejecting it (negative for the family)."""
    report = lint_fixture("noqa_suppressed.py")
    for code in ("DIT201", "DIT202", "DIT203", "DIT204"):
        assert not diags(report, code)
