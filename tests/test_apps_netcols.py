"""Netcols (paper §5.2): game mechanics and the Figure 12 invariant."""

from __future__ import annotations

import pytest

from repro.apps import NetcolsBot, NetcolsGame, netcols_invariant
from repro.apps.netcols import COLORS, MATCH_LEN, PIECE_SIZE


class TestGameMechanics:
    def test_initial_board_empty(self):
        g = NetcolsGame(6, 10)
        assert all(g.column_height(c) == 0 for c in range(6))
        assert netcols_invariant(g) is True

    def test_drop_lands_on_stack(self):
        g = NetcolsGame(6, 10)
        g.drop_piece(2, (1, 2, 1))
        assert g.column_height(2) == 3
        assert g.cell(2, 0) == 1
        assert g.cell(2, 1) == 2
        assert g.cell(2, 2) == 1
        assert g.cell(2, 3) is None
        assert netcols_invariant(g) is True

    def test_vertical_match_clears(self):
        g = NetcolsGame(6, 10)
        cleared = g.drop_piece(0, (4, 4, 4))
        assert cleared == 3
        assert g.column_height(0) == 0
        assert g.score == 3
        assert netcols_invariant(g) is True

    def test_horizontal_match_with_gravity_cascade(self):
        g = NetcolsGame(6, 10)
        # Build three columns whose bottom rows complete a horizontal run.
        g.drop_piece(0, (5, 1, 2))
        g.drop_piece(1, (5, 2, 1))
        assert g.score == 0
        cleared = g.drop_piece(2, (5, 3, 3))
        assert cleared >= 3  # at least the bottom 5-run clears
        assert netcols_invariant(g) is True

    def test_column_overflow_sets_game_over(self):
        g = NetcolsGame(2, PIECE_SIZE)
        g.drop_piece(0, (1, 2, 1))  # fills column 0 exactly
        assert g.drop_piece(0, (1, 2, 1)) == 0
        assert g.game_over is True
        with pytest.raises(ValueError):
            g.drop_piece(0, (1, 2, 1))

    def test_bad_column_rejected(self):
        g = NetcolsGame(4, 10)
        with pytest.raises(ValueError):
            g.drop_piece(9, (1, 1, 2))

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            NetcolsGame(0, 10)
        with pytest.raises(ValueError):
            NetcolsGame(4, PIECE_SIZE - 1)

    def test_render(self):
        g = NetcolsGame(3, 4)
        g.drop_piece(1, (1, 2, 3))
        art = g.render()
        lines = art.splitlines()
        assert lines[-1] == "---"
        assert lines[-2] == ".1."  # bottom row

    def test_no_floating_after_many_frames(self):
        g = NetcolsGame(8, 16)
        bot = NetcolsBot(g, seed=1)
        for _ in range(400):
            bot.step()
            assert netcols_invariant(g) is True

    def test_bot_restarts_when_board_full(self):
        g = NetcolsGame(4, PIECE_SIZE)  # tiny: fills in 4 drops
        bot = NetcolsBot(g, seed=2)
        for _ in range(30):
            bot.step()
        assert bot.games_played > 1
        assert netcols_invariant(g) is True

    def test_bot_determinism(self):
        g1, g2 = NetcolsGame(8, 16), NetcolsGame(8, 16)
        b1, b2 = NetcolsBot(g1, seed=7), NetcolsBot(g2, seed=7)
        for _ in range(100):
            b1.step()
            b2.step()
        assert g1.score == g2.score
        assert [g1.column_height(c) for c in range(8)] == [
            g2.column_height(c) for c in range(8)
        ]


class TestFigure12Invariant:
    def test_floating_jewel_detected(self):
        g = NetcolsGame(6, 10)
        g.drop_piece(0, (1, 2, 1))
        assert g.corrupt_float(0) is True
        assert netcols_invariant(g) is False

    def test_skewed_top_detected(self):
        g = NetcolsGame(6, 10)
        g.drop_piece(3, (1, 2, 1))
        g.corrupt_top(3, +1)  # claims an empty cell is filled
        assert netcols_invariant(g) is False
        g.corrupt_top(3, -1)
        assert netcols_invariant(g) is True
        g.corrupt_top(3, -1)  # claims a filled cell is empty
        assert netcols_invariant(g) is False

    def test_incremental_agrees_over_a_game(self, engine_factory):
        engine = engine_factory(netcols_invariant)
        g = NetcolsGame(8, 16)
        bot = NetcolsBot(g, seed=11)
        assert engine.run(g) is True
        for _ in range(200):
            bot.step()
            assert engine.run(g) == netcols_invariant(g) is True

    def test_incremental_detects_corruption(self, engine_factory):
        engine = engine_factory(netcols_invariant)
        g = NetcolsGame(8, 16)
        bot = NetcolsBot(g, seed=13)
        for _ in range(40):
            bot.step()
        assert engine.run(g) is True
        col = next(c for c in range(8) if g.corrupt_float(c))
        assert engine.run(g) is False
        g.grid[col][g.top[col] + 1] = None  # repair
        assert engine.run(g) is True

    def test_frame_work_is_localized(self, engine_factory):
        engine = engine_factory(netcols_invariant)
        g = NetcolsGame(32, 20)
        bot = NetcolsBot(g, seed=17)
        for _ in range(60):
            bot.step()
        engine.run(g)
        graph = engine.graph_size
        bot.step()
        report = engine.run_with_report(g)
        assert report.result is True
        # One frame touches a handful of columns; most of the graph reused.
        assert report.delta["execs"] < graph * 0.25
