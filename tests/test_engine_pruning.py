"""Pruning (paper §3.4): unreachable computations are removed before they
can be re-executed, and the graph tracks the live computation exactly."""

from __future__ import annotations

from repro import TrackedObject, check


class Node(TrackedObject):
    def __init__(self, key, left=None, right=None):
        self.key = key
        self.left = left
        self.right = right


@check
def tree_sum(n):
    if n is None:
        return 0
    a = tree_sum(n.left)
    b = tree_sum(n.right)
    return n.key + a + b


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def list_len(e):
    if e is None:
        return 0
    return 1 + list_len(e.next)


class TestPruning:
    def test_detached_subtree_pruned(self, engine_factory):
        engine = engine_factory(tree_sum)
        left = Node(2, Node(3), Node(4))
        root = Node(1, left, Node(5))
        assert engine.run(root) == 15
        size_before = engine.graph_size
        root.left = None  # detach a 3-node subtree
        report = engine.run_with_report(root)
        assert report.result == 6
        assert report.delta["nodes_pruned"] == 3
        assert engine.graph_size == size_before - 3

    def test_pruned_dirty_node_not_reexecuted(self, engine_factory):
        """A dirty node inside a subtree that gets detached by a shallower
        dirty node's re-execution must be pruned, not re-run (paper: "The
        dirty node P is pruned from the graph and will not be
        re-executed")."""
        engine = engine_factory(tree_sum)
        deep = Node(4)
        left = Node(2, Node(3), deep)
        root = Node(1, left, Node(5))
        assert engine.run(root) == 15
        # Two modifications: detach `left` at the root (shallow) and also
        # mutate `deep` inside the now-detached subtree (deep).
        root.left = None
        deep.key = 1000
        report = engine.run_with_report(root)
        assert report.result == 6
        # The deep dirty node was pruned before its turn: only the root
        # re-executed among the dirty nodes.
        assert report.delta["dirty_execs"] == 1

    def test_reattached_subtree_reused(self, engine_factory):
        engine = engine_factory(tree_sum)
        left = Node(2, Node(3), Node(4))
        root = Node(1, left, Node(5))
        engine.run(root)
        detached_reads = engine.stats.snapshot()
        root.left = None
        engine.run(root)
        root.left = left  # bring it back: nodes were pruned, so re-execute
        report = engine.run_with_report(root)
        assert report.result == 15
        assert report.delta["nodes_created"] == 3

    def test_moved_subtree_nodes_survive(self, engine_factory):
        """Moving a subtree to the other side keeps its memo entries: keys
        are (function, node identity), which don't change."""
        engine = engine_factory(tree_sum)
        sub = Node(7, Node(8), Node(9))
        root = Node(1, sub, None)
        assert engine.run(root) == 25
        root.left = None
        root.right = sub  # both writes before one check
        report = engine.run_with_report(root)
        assert report.result == 25
        # Only the root's own invocation re-ran; tree_sum(sub) and its
        # children were reused via optimistic memoization.
        assert report.delta["execs"] == 1
        assert report.delta["nodes_pruned"] == 0

    def test_refcounts_released_on_prune(self, engine_factory):
        engine = engine_factory(list_len)
        tail = Elem(3)
        head = Elem(1, Elem(2, tail))
        assert engine.run(head) == 3
        assert tail._ditto_refcount > 0
        head.next = None
        assert engine.run(head) == 1
        assert tail._ditto_refcount == 0

    def test_graph_tracks_live_computation_size(self, engine_factory):
        engine = engine_factory(list_len)
        head = None
        for v in range(30):
            head = Elem(v, head)
        assert engine.run(head) == 30
        # list_len(None) is a leaf call (all ref args None) and is inlined,
        # so the graph holds exactly one node per element.
        assert engine.graph_size == 30

    def test_prune_cascade_defers_on_in_progress_nodes(self, engine_factory):
        """Regression: after rotation-style reshapes, a pruning cascade
        triggered by a descendant's cleanup can reach a node that is
        *currently executing* (it is a stale descendant of the pruned
        region under the old graph shape).  The prune must be deferred, and
        the node pruned after its execution iff still unreachable —
        otherwise surviving nodes keep caller edges to pruned nodes.

        Found by the hypothesis red-black-tree machine; replayed here as a
        deterministic churn with per-step graph validation."""
        import random

        from repro.structures import RedBlackTree, rbt_invariant

        engine = engine_factory(rbt_invariant)
        rng = random.Random(20)
        tree = RedBlackTree()
        keys: set[int] = set()
        for step in range(60):
            roll = rng.random()
            if roll < 0.4 or not keys:
                k = rng.randrange(60)
                tree.insert(k)
                keys.add(k)
            elif roll < 0.7:
                k = rng.choice(sorted(keys))
                tree.delete(k)
                keys.discard(k)
            else:
                k = rng.choice(sorted(keys))
                tree.corrupt_color(k)
                assert engine.run(tree) == rbt_invariant(tree)
                tree.corrupt_color(k)
            assert engine.run(tree) == rbt_invariant(tree) is True
            engine.validate()

    def test_leaf_optimization_inlines_none_calls(self, engine_factory):
        fast = engine_factory(list_len, leaf_optimization=True)
        slow = engine_factory(list_len, leaf_optimization=False)
        head = Elem(1, Elem(2))
        assert fast.run(head) == slow.run(head) == 2
        assert fast.stats.leaf_execs == 1
        assert slow.stats.leaf_execs == 0
        # Without the optimization the None invocation is a real node.
        assert slow.graph_size == fast.graph_size + 1
