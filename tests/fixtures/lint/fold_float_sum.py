"""Lint fixture: a float summation fold.  Expect one DIT204 warning.

``half_weight_sum`` is structurally a perfect sum fold, but the term and
identity are floats.  IEEE-754 addition is not associative, and derived
maintenance reassociates the fold (subtract the old contribution, add the
new), so the maintained value can drift from the from-scratch result in
the last ulp — violating the bit-identical parity the QA oracle enforces.
The classifier warns and keeps the check on the memo path.
"""

from repro import check


@check
def half_weight_sum(v, i):
    if i >= len(v):
        return 0.0
    x = v[i]
    rest = half_weight_sum(v, i + 1)
    return x * 0.5 + rest
