"""Lint fixture: a helper whose heap reads cannot be attributed.

Expected findings: DIT003 *error* on ``left_value`` — it reads the nested
chain ``pair.left.value``; only depth-1 reads (``param.field``) can be
recorded as implicit arguments at the call site.
"""

from repro import TrackedObject, check


class Pair(TrackedObject):
    def __init__(self, left, right):
        self.left = left
        self.right = right


def left_value(pair):
    return pair.left.value


@check
def pair_ok(pair):
    if pair is None:
        return True
    return left_value(pair) >= 0
