"""Lint fixture: ``object.__setattr__`` stores that evade the barrier.

Expected findings:

* DIT101 *error*   — ``bypass_value`` stores ``value``, which ``cell_ok``
  monitors;
* DIT101 *warning* — ``bypass_color`` stores ``color``, monitored by no
  check (today);
* nothing for ``Cell.__init__`` (construction precedes tracking) or for
  the ``_generation`` store (private bookkeeping is never monitored).
"""

from repro import TrackedObject, check


class Cell(TrackedObject):
    def __init__(self, value):
        object.__setattr__(self, "value", value)


@check
def cell_ok(cell):
    return cell is None or cell.value >= 0


def bypass_value(cell, value):
    object.__setattr__(cell, "value", value)


def bypass_color(cell, color):
    object.__setattr__(cell, "color", color)


def bump_generation(cell, gen):
    object.__setattr__(cell, "_generation", gen)
