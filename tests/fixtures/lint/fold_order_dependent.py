"""Lint fixture: an order-dependent fold.  Expect one DIT202 note.

``digit_value`` recurses linearly and reads an affine slot, but its
combine ``rest * 10 + v[i]`` multiplies the callee result before adding —
the operation is not a commutative monoid with the callee bare on one
side, so a per-element delta cannot repair it (removing an element shifts
the weight of every element after it).  The check stays on the memo path.
"""

from repro import check


@check
def digit_value(v, i):
    if i >= len(v):
        return 0
    rest = digit_value(v, i + 1)
    return rest * 10 + v[i]
