"""Lint fixture: calls the analyzer cannot resolve or verify.

Expected findings:

* DIT002 *warning* — ``item_ok`` calls ``mystery_predicate``, which is
  not defined in the linted files;
* DIT005 *warning* — ``item_ok`` calls the unregistered method
  ``.digest()``.
"""

from repro import TrackedObject, check


class Item(TrackedObject):
    def __init__(self, value):
        self.value = value

    def digest(self):
        return hash(self.value)


@check
def item_ok(item):
    if item is None:
        return True
    if not mystery_predicate(item.value):
        return False
    return item.digest() >= 0
