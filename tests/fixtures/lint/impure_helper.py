"""Lint fixture: a check reaches a helper with side effects.

Expected findings: DIT001 *error* on ``bump`` (store to an attribute of a
non-owned object).  ``bump`` is not registered pure, so this is DIT001,
not DIT006.
"""

from repro import TrackedObject, check


class Counter(TrackedObject):
    def __init__(self):
        self.count = 0


def bump(counter):
    counter.count = counter.count + 1
    return counter.count


@check
def count_ok(counter):
    return bump(counter) > 0
