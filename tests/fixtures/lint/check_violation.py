"""Lint fixture: a check outside the admissible language subset.

Expected findings: DIT007 *error* on ``normalize_and_check`` — it stores
to an object field (checks must be side-effect free; Definition 2).
At import time this module would raise ``CheckRestrictionError``; the
file-mode linter reports the same violation as a diagnostic instead.
"""

from repro import TrackedObject, check


class Slot(TrackedObject):
    def __init__(self, value):
        self.value = value


@check
def normalize_and_check(slot):
    slot.value = abs(slot.value)
    return slot.value >= 0
