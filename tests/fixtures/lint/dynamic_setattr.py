"""Lint fixture: ``setattr`` with a dynamic field name.

Expected findings: DIT103 *warning* in ``set_field`` (the barrier fires,
but the monitored-field set cannot be checked statically).  The
constant-name ``setattr`` in ``set_value`` is equivalent to a plain store
and produces nothing.
"""

from repro import TrackedObject, check


class Record(TrackedObject):
    def __init__(self, value):
        self.value = value


@check
def record_ok(record):
    return record is None or record.value >= 0


def set_field(record, name, value):
    setattr(record, name, value)


def set_value(record, value):
    setattr(record, "value", value)
