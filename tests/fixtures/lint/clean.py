"""Lint fixture: fully admissible structure + check.  Expect no gating
findings (errors or warnings).

Exercises every shape the analyzer must accept: a tracked class whose
mutators go through the barrier, a registered helper with only coverable
depth-1 reads, a recursive check, and an immutable module constant.  The
recursive check does receive a DIT2xx strategy-classification *note*
(pointer recursion is not an index fold), which is informational.
"""

from repro import TrackedObject, check, register_pure_helper

FLOOR = 0


class Node(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next

    def push(self, value):
        self.next = Node(value, self.next)


@register_pure_helper
def value_ok(node):
    return node.value >= FLOOR


@check
def non_negative(node):
    if node is None:
        return True
    if not value_ok(node):
        return False
    return non_negative(node.next)
