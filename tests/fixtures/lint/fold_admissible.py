"""Lint fixture: an admissible linear fold.  Expect one DIT201 note.

``running_total`` matches the fold grammar end to end: plain positional
parameters, the ``i >= len(v)`` base guard returning the sum identity, a
single affine slot read, one linear self-call stepping ``i + 1``, and a
commutative-monoid combine (``x + rest`` with the callee result bare on
one side).  The derived strategy can maintain it in O(1) per mutation.
"""

from repro import check


@check
def running_total(v, i):
    if i >= len(v):
        return 0
    x = v[i]
    rest = running_total(v, i + 1)
    return x + rest
