"""Lint fixture: a helper registered pure that is not.

Expected findings: DIT006 *error* on ``absorb`` — decorated with
``register_pure_helper`` yet it stores to its parameter.  The
registration upgrades what would be DIT001 into the harsher
"registered-pure lie".
"""

from repro import TrackedObject, check, register_pure_helper


class Tally(TrackedObject):
    def __init__(self):
        self.total = 0


@register_pure_helper
def absorb(tally, amount):
    tally.total = tally.total + amount
    return tally.total


@check
def tally_ok(tally):
    return absorb(tally, 0) >= 0
