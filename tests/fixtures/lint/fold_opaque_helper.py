"""Lint fixture: a fold whose term calls a helper.  Expect one DIT203 note.

``all_chains_ok`` has an admissible shape (and-monoid combine, linear
self-call, affine slot read), but its per-element term calls
``chain_ok`` — a read the fold maintainer cannot attribute to container
slots, so a changed element's contribution cannot be re-evaluated in
isolation and no delta rule can be synthesized.  The helper itself is
registered pure with only depth-1 reads, so no DIT0xx finding fires: the
rejection is purely a strategy classification.
"""

from repro import TrackedObject, check, register_pure_helper


class Link(TrackedObject):
    def __init__(self, key, next=None):
        self.key = key
        self.next = next


@register_pure_helper
def chain_ok(e):
    return e is None or e.key >= 0


@check
def all_chains_ok(t, i):
    buckets = t.buckets
    if i >= len(buckets):
        return True
    ok = chain_ok(buckets[i])
    rest = all_chains_ok(t, i + 1)
    return ok and rest
