"""Lint fixture: ``# noqa`` suppression.  Expect NO findings.

Both bypasses are real (same shapes as ``bypass_setattr.py``) but each
offending line carries a suppression comment: a code-specific
``# noqa: DIT101`` and a bare ``# noqa``.
"""

from repro import TrackedObject, check


class Quiet(TrackedObject):
    def __init__(self, value):
        self.value = value


@check
def quiet_ok(q):
    return q is None or q.value >= 0


def sanctioned_bypass(q, value):
    object.__setattr__(q, "value", value)  # noqa: DIT101


def sanctioned_dict_poke(q, value):
    q.__dict__["value"] = value  # noqa
