"""Lint fixture: a check reads a global bound to a mutable list.

Expected findings: DIT004 *error* on ``in_range`` (reads ``LIMITS``, a
list — mutations would be invisible to the write barriers).  The
immutable ``SCALE`` read produces nothing.
"""

from repro import TrackedObject, check

LIMITS = [0, 100]
SCALE = 10


class Reading(TrackedObject):
    def __init__(self, value):
        self.value = value


@check
def in_range(reading):
    if reading is None:
        return True
    return LIMITS[0] <= reading.value * SCALE <= LIMITS[1]
