"""Lint fixture: a barrier-less class stores a check-monitored field name.

Expected findings: DIT105 *warning* in ``PlainCache.refresh`` (stores
``value``, which ``value_ok`` monitors, on a class that does not derive
from a tracked base).  The ``__init__`` store and the store on the
*tracked* class produce nothing.
"""

from repro import TrackedObject, check


class Tracked(TrackedObject):
    def __init__(self, value):
        self.value = value

    def set(self, value):
        self.value = value


@check
def value_ok(t):
    return t is None or t.value >= 0


class PlainCache:
    def __init__(self):
        self.value = 0

    def refresh(self, value):
        self.value = value
