"""Lint fixture: the raw backing list of a tracked container.

Expected findings:

* DIT104 *error*   — ``sneak_append`` mutates ``xs._items`` in place;
* DIT104 *error*   — ``sneak_store`` assigns a slot through the alias;
* DIT104 *warning* — ``grab`` merely takes the alias (escape);
* nothing for ``peek_len`` — a plain read of ``._items`` is not a store.
"""

from repro import TrackedList, check


@check
def has_items(xs):
    return len(xs) >= 0


def sneak_append(xs, value):
    xs._items.append(value)


def sneak_store(xs, index, value):
    xs._items[index] = value


def grab(xs):
    raw = xs._items
    return raw


def peek_len(xs):
    return len(xs._items)
