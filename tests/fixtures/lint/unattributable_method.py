"""DIT008 fixture: a registered-pure method on a tracked class whose heap
reads cannot be attributed to the calling node (depth-2 chain through the
receiver), so mutations it depends on would never dirty the graph."""

from repro import TrackedObject, check, register_pure_method


class Owner(TrackedObject):
    def __init__(self, name):
        self.name = name


class Wallet(TrackedObject):
    def __init__(self, owner):
        self.owner = owner

    def owner_name(self):
        return self.owner.name


register_pure_method(Wallet, "owner_name")


@check
def wallet_named(w):
    return w is None or w.owner_name() != ""
