"""Lint fixture: stores through the instance ``__dict__``.

Expected findings: DIT102 *error* in ``poke`` (subscript store) and in
``merge`` (``__dict__.update``).
"""

from repro import TrackedObject, check


class Box(TrackedObject):
    def __init__(self, value):
        self.value = value


@check
def box_ok(box):
    return box is None or box.value is not None


def poke(box, value):
    box.__dict__["value"] = value


def merge(box, fields):
    box.__dict__.update(fields)
