"""EnginePool: admission, breakers, deadlines, and isolation surfacing.

Every robustness dimension of the pool is exercised deterministically:
shed load via an Event-blocked worker with ``max_queue=1``, breakers via
an injected fake clock, deadlines via sleeping step probes with generous
margins, and cross-tenant structure sharing via the adoption guard.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import TrackedObject, check
from repro.core.errors import EngineStateError, TenantIsolationError
from repro.obs import PoolMetrics
from repro.resilience.degradation import BreakerPolicy
from repro.serving import (
    BREAKER_OPEN,
    DEADLINE,
    ERROR,
    OK,
    REJECTED,
    CheckResult,
    EnginePool,
    PoolConfig,
)

pytestmark = pytest.mark.serving


class Node(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def pool_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return pool_ordered(e.next)


def build(*values):
    head = None
    for v in reversed(values):
        head = Node(v, head)
    return head


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# Basics. --------------------------------------------------------------------


def test_register_check_mutate_roundtrip():
    with EnginePool() as pool:
        pool.register("t", pool_ordered)
        head = build(1, 2, 3)
        res = pool.check("t", head)
        assert res.ok and res.status == OK
        assert res.unwrap() is True
        assert res.duration >= 0

        def corrupt():
            head.next.value = 0

        pool.mutate("t", corrupt)
        assert pool.check("t", head).unwrap() is False
        stats = pool.stats()
        assert stats["checks"] == 2
        assert stats["checks_ok"] == 2
        assert stats["mutations"] == 1


def test_duplicate_register_raises():
    with EnginePool() as pool:
        pool.register("t", pool_ordered)
        with pytest.raises(ValueError):
            pool.register("t", pool_ordered)


def test_unknown_tenant_is_an_error_result_not_an_exception():
    with EnginePool() as pool:
        res = pool.check("nobody", None)
        assert res.status == ERROR
        assert isinstance(res.error, KeyError)
        with pytest.raises(KeyError):
            res.unwrap()


def test_unregister_releases_the_tenant():
    with EnginePool() as pool:
        pool.register("t", pool_ordered)
        head = build(1, 2, 3)
        assert pool.check("t", head).ok
        pool.unregister("t")
        assert pool.check("t", head).status == ERROR
        pool.unregister("t")  # idempotent
        # The closed engine released its refcounts: another tenant may
        # adopt the very same structure.
        pool.register("u", pool_ordered)
        assert pool.check("u", head).unwrap() is True


def test_closed_pool_answers_with_error_results():
    pool = EnginePool()
    pool.register("t", pool_ordered)
    pool.close()
    pool.close()  # idempotent
    res = pool.check("t", build(1))
    assert res.status == ERROR
    assert isinstance(res.error, EngineStateError)
    with pytest.raises(EngineStateError):
        pool.register("u", pool_ordered)


def test_check_exception_is_an_error_result():
    with EnginePool(PoolConfig(step_hook_interval=1)) as pool:
        pool.register("t", pool_ordered)

        def boom():
            raise RuntimeError("poisoned")

        pool.set_step_probe("t", boom)
        res = pool.check("t", build(1, 2, 3))
        assert res.status == ERROR
        assert isinstance(res.error, RuntimeError)


# Bounded admission. ---------------------------------------------------------


def test_full_pool_sheds_with_explicit_rejected_result():
    """max_queue=1, the single slot wedged on an Event: the next arrival
    must shed at admission with an explicit ``rejected`` result, and the
    slot must be reusable once the wedge clears."""
    gate = threading.Event()
    config = PoolConfig(
        shards=2, workers=2, max_queue=1, step_hook_interval=1,
    )
    with EnginePool(config) as pool:
        pool.register("wedged", pool_ordered)
        pool.register("victim", pool_ordered)
        pool.set_step_probe("wedged", gate.wait)
        head_w, head_v = build(1, 2, 3), build(4, 5, 6)
        try:
            future = pool.submit("wedged", head_w)
            # Wait until the wedged check actually holds the slot.
            deadline = time.monotonic() + 5
            while pool.stats()["queue_depth"] < 1:
                assert time.monotonic() < deadline, "worker never started"
                time.sleep(0.001)
            shed = pool.check("victim", head_v)
            assert shed.status == REJECTED
            assert shed.detail == {"max_queue": 1}
            shed_async = pool.submit("victim", head_v)
            assert shed_async.result(timeout=5).status == REJECTED
        finally:
            gate.set()
        assert future.result(timeout=5).unwrap() is True
        # Slot released: the victim is admissible again.
        assert pool.check("victim", head_v).unwrap() is True
        stats = pool.stats()
        assert stats["shed"] == 2
        assert stats["queue_depth"] == 0


# Circuit breakers. ----------------------------------------------------------


def test_breaker_trips_sheds_and_recovers_via_half_open_probe():
    clock = FakeClock()
    config = PoolConfig(
        breaker=BreakerPolicy(failure_threshold=2, recovery_time=10.0),
        step_hook_interval=1,
    )
    with EnginePool(config, clock=clock) as pool:
        pool.register("t", pool_ordered)
        head = build(1, 2, 3)

        def boom():
            raise RuntimeError("poisoned")

        pool.set_step_probe("t", boom)
        assert pool.check("t", head).status == ERROR
        assert pool.check("t", head).status == ERROR  # second: trips
        shed = pool.check("t", head)
        assert shed.status == BREAKER_OPEN
        assert shed.retry_after == pytest.approx(10.0)
        assert isinstance(shed, CheckResult) and not shed.ok

        clock.advance(10.0)
        pool.set_step_probe("t", None)  # tenant healthy again
        probe = pool.check("t", head)  # the half-open probe
        assert probe.unwrap() is True
        assert pool.check("t", head).ok  # breaker closed for good
        stats = pool.stats()
        assert stats["breaker_trips"] == 1
        assert stats["breaker_shed"] == 1
        assert stats["breakers_open"] == 0


def test_breakers_are_per_tenant():
    clock = FakeClock()
    config = PoolConfig(
        breaker=BreakerPolicy(failure_threshold=1, recovery_time=10.0),
        step_hook_interval=1,
    )
    with EnginePool(config, clock=clock) as pool:
        pool.register("sick", pool_ordered)
        pool.register("healthy", pool_ordered)
        pool.set_step_probe(
            "sick", lambda: (_ for _ in ()).throw(RuntimeError("no"))
        )
        head_s, head_h = build(1, 2, 3), build(1, 2, 3)
        assert pool.check("sick", head_s).status == ERROR
        assert pool.check("sick", head_s).status == BREAKER_OPEN
        # The neighbour is untouched by the sick tenant's breaker.
        for _ in range(3):
            assert pool.check("healthy", head_h).unwrap() is True


def test_breakers_can_be_disabled():
    with EnginePool(PoolConfig(breaker=None, step_hook_interval=1)) as pool:
        assert pool.breakers is None
        pool.register("t", pool_ordered)
        pool.set_step_probe(
            "t", lambda: (_ for _ in ()).throw(RuntimeError("no"))
        )
        head = build(1, 2, 3)
        for _ in range(5):  # never sheds, only errors
            assert pool.check("t", head).status == ERROR
        assert "breaker_trips" not in pool.stats()


# Deadlines. -----------------------------------------------------------------


def _slow_probe(tick):
    return lambda: time.sleep(tick)


def test_deadline_degrade_retry_answers_within_the_2x_budget():
    """First attempt blows the deadline (one huge probe sleep); the
    degrade retry — probe now quiet — completes and is flagged."""
    deadline = 0.05
    config = PoolConfig(
        on_deadline="degrade", deadline_extension=1.9, step_hook_interval=1,
    )
    with EnginePool(config) as pool:
        pool.register("t", pool_ordered)
        head = build(*range(20))
        assert pool.check("t", head).ok  # warm, no deadline

        fired = []

        def sleep_once():
            if not fired:
                fired.append(True)
                time.sleep(deadline * 1.2)

        pool.mutate("t", pool.engine("t").invalidate)
        pool.set_step_probe("t", sleep_once)
        res = pool.check("t", head, deadline=deadline)
        assert res.status == OK and res.degraded
        assert res.unwrap() is True
        assert pool.engine("t").stats.deadline_aborts == 1
        assert pool.stats()["checks_degraded"] == 1


def test_deadline_double_abort_is_explicit_and_within_2x_budget():
    deadline = 0.05
    config = PoolConfig(
        on_deadline="degrade", deadline_extension=1.5, step_hook_interval=1,
    )
    with EnginePool(config) as pool:
        pool.register("t", pool_ordered)
        head = build(*range(50))
        assert pool.check("t", head).ok
        pool.mutate("t", pool.engine("t").invalidate)
        pool.set_step_probe("t", _slow_probe(0.002))  # crawls every tick
        res = pool.check("t", head, deadline=deadline)
        assert res.status == DEADLINE
        assert res.degraded, "the degrade retry was attempted"
        assert res.detail["retried"] is True
        assert res.duration <= 2 * deadline, (
            f"deadline overrun {res.duration / deadline:.2f}x blew the "
            f"2x total-budget contract"
        )
        assert pool.engine("t").stats.deadline_aborts == 2
        assert pool.stats()["deadline_hits"] == 1


def test_on_deadline_reject_fails_fast_without_retry():
    deadline = 0.05
    config = PoolConfig(
        on_deadline="reject", step_hook_interval=1,
    )
    with EnginePool(config) as pool:
        pool.register("t", pool_ordered)
        head = build(*range(50))
        assert pool.check("t", head).ok
        pool.mutate("t", pool.engine("t").invalidate)
        pool.set_step_probe("t", _slow_probe(0.002))
        res = pool.check("t", head, deadline=deadline)
        assert res.status == DEADLINE
        assert not res.degraded
        assert res.detail == {"deadline": deadline}
        assert pool.engine("t").stats.deadline_aborts == 1
        # The engine recovers cleanly once the tenant behaves.
        pool.set_step_probe("t", None)
        assert pool.check("t", head).unwrap() is True


def test_pool_default_deadline_applies_when_call_omits_one():
    config = PoolConfig(
        deadline=0.05, on_deadline="reject", step_hook_interval=1,
    )
    with EnginePool(config) as pool:
        pool.register("t", pool_ordered)
        head = build(*range(50))
        assert pool.check("t", head).ok
        pool.mutate("t", pool.engine("t").invalidate)
        pool.set_step_probe("t", _slow_probe(0.002))
        assert pool.check("t", head).status == DEADLINE


# Isolation surfacing. -------------------------------------------------------


def test_cross_tenant_structure_sharing_surfaces_as_isolation_error():
    """Two tenants pointed at one live structure is an isolation breach:
    the pool answers with an explicit error result carrying
    TenantIsolationError, and the rightful owner keeps working."""
    with EnginePool() as pool:
        pool.register("owner", pool_ordered)
        pool.register("intruder", pool_ordered)
        head = build(1, 2, 3)
        assert pool.check("owner", head).unwrap() is True
        res = pool.check("intruder", head)
        assert res.status == ERROR
        assert isinstance(res.error, TenantIsolationError)
        assert pool.check("owner", head).unwrap() is True


def test_repeated_steal_attempts_never_drain_the_owners_refcounts():
    """Regression: a failed adoption used to leave the location recorded
    in the aborted node's implicits without its matching incref, so the
    cleanup decref'd the *owner's* reference count — and an intruder with
    a warm graph (whose misprediction-retry rounds re-execute the failing
    node) drained it to zero within one check() call, silently adopting
    the structure out from under its owner."""
    with EnginePool(PoolConfig(breaker=None)) as pool:
        pool.register("owner", pool_ordered)
        pool.register("intruder", pool_ordered)
        stolen = build(1, 2, 3)
        own = build(4, 5, 6)
        assert pool.check("owner", stolen).unwrap() is True
        # Warm graph on the intruder: the steal below goes through root
        # retargeting + retry rounds, not the cold first-run path.
        assert pool.check("intruder", own).unwrap() is True
        refcount_before = stolen._ditto_refcount
        for _ in range(5):
            res = pool.check("intruder", stolen)
            assert res.status == ERROR
            assert isinstance(res.error, TenantIsolationError), res.error
        assert stolen._ditto_refcount == refcount_before, (
            "failed adoptions must not touch the owner's refcounts"
        )
        assert stolen._ditto_state is pool.tracking("owner")
        # The owner's graph is fully intact: its barrier still fires and
        # the incremental repair still sees the mutation.
        def corrupt():
            stolen.next.value = 0
        pool.mutate("owner", corrupt)
        assert pool.check("owner", stolen).unwrap() is False
        assert pool.check("intruder", own).unwrap() is True


# Config validation and health. ----------------------------------------------


def test_pool_config_validation():
    with pytest.raises(ValueError):
        PoolConfig(shards=0)
    with pytest.raises(ValueError):
        PoolConfig(max_queue=0)
    with pytest.raises(ValueError):
        PoolConfig(deadline=0.0)
    with pytest.raises(ValueError):
        PoolConfig(on_deadline="panic")
    with pytest.raises(ValueError):
        PoolConfig(deadline_extension=2.0)
    with pytest.raises(ValueError):
        PoolConfig(deadline_extension=0.5)
    with pytest.raises(ValueError):
        PoolConfig(step_hook_interval=0)


def test_stats_shape_and_tenant_listing():
    with EnginePool(PoolConfig(shards=3, workers=2)) as pool:
        pool.register("a", pool_ordered)
        pool.register("b", pool_ordered)
        assert sorted(pool.tenants()) == ["a", "b"]
        stats = pool.stats()
        for key in (
            "checks", "checks_ok", "checks_error", "checks_degraded",
            "deadline_hits", "shed", "breaker_shed", "mutations",
            "queue_depth", "tenants", "shards", "workers",
            "breakers", "breaker_trips", "breaker_rejections",
            "breakers_open",
        ):
            assert key in stats, key
        assert stats["tenants"] == 2
        assert stats["shards"] == 3
        assert stats["workers"] == 2


def test_pool_metrics_mirror_and_prometheus_text():
    with EnginePool() as pool:
        pool.register("t", pool_ordered)
        metrics = PoolMetrics(pool)
        head = build(1, 2, 3)
        metrics.record_check(pool.check("t", head))
        metrics.record_check(pool.check("nobody", None))
        text = metrics.to_prometheus_text()
        assert "ditto_pool_checks_total 2" in text
        assert "ditto_pool_checks_ok_total 1" in text
        assert "ditto_pool_checks_error_total 1" in text
        assert "ditto_pool_tenants 1" in text
        assert "ditto_pool_check_duration_seconds" in text
