"""BTree: CLRS semantics against a sorted-set model, the four invariants,
and incremental checking."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures.btree import (
    BTree,
    btree_invariant,
    check_btree_bounds,
    check_btree_counts,
    check_btree_depth,
    NEG_INF,
    POS_INF,
)


class TestBTreeSemantics:
    def test_insert_contains(self):
        t = BTree(t=2)
        for k in [5, 1, 9, 3]:
            assert t.insert(k) is True
        assert t.insert(5) is False
        assert 1 in t and 9 in t and 7 not in t
        assert len(t) == 4

    def test_keys_sorted(self):
        t = BTree(t=3)
        for k in [9, 2, 7, 4, 1, 8]:
            t.insert(k)
        assert list(t.keys()) == [1, 2, 4, 7, 8, 9]

    def test_root_split(self):
        t = BTree(t=2)  # root splits after 3 keys
        for k in range(7):
            t.insert(k)
        assert not t.root.leaf
        assert btree_invariant(t) is True

    def test_delete_from_leaf(self):
        t = BTree(t=2)
        for k in range(5):
            t.insert(k)
        assert t.delete(4) is True
        assert t.delete(4) is False
        assert list(t.keys()) == [0, 1, 2, 3]

    def test_delete_internal_keys(self):
        t = BTree(t=2)
        for k in range(20):
            t.insert(k)
        for k in [10, 5, 15, 0, 19]:
            assert t.delete(k) is True
            assert btree_invariant(t) is True
        assert sorted(t.keys()) == [
            k for k in range(20) if k not in {10, 5, 15, 0, 19}
        ]

    def test_delete_everything_shrinks_root(self):
        t = BTree(t=2)
        for k in range(30):
            t.insert(k)
        for k in range(30):
            assert t.delete(k) is True
            assert btree_invariant(t) is True
        assert len(t) == 0
        assert t.root.leaf

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTree(t=1)

    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_churn_keeps_invariants(self, degree):
        t = BTree(t=degree)
        rng = random.Random(degree)
        keys: set[int] = set()
        for step in range(500):
            if rng.random() < 0.55 or not keys:
                k = rng.randrange(1000)
                t.insert(k)
                keys.add(k)
            else:
                k = rng.choice(sorted(keys))
                assert t.delete(k) is True
                keys.discard(k)
            if step % 29 == 0:
                assert list(t.keys()) == sorted(keys)
                assert btree_invariant(t) is True
        assert list(t.keys()) == sorted(keys)
        assert btree_invariant(t) is True

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 60)),
                    max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_matches_set_model(self, ops):
        t = BTree(t=2)
        model: set[int] = set()
        for is_insert, key in ops:
            if is_insert:
                assert t.insert(key) == (key not in model)
                model.add(key)
            else:
                assert t.delete(key) == (key in model)
                model.discard(key)
        assert list(t.keys()) == sorted(model)
        assert btree_invariant(t) is True


class TestBTreeInvariants:
    def _tree(self, n=30, t=2):
        tree = BTree(t=t)
        for k in range(n):
            tree.insert(k)
        return tree

    def test_counts_detects_skew(self):
        tree = self._tree()
        assert check_btree_counts(tree, tree.root, 1) is True
        tree.corrupt_count(+1)
        assert btree_invariant(tree) is False

    def test_bounds_detects_bad_key(self):
        tree = self._tree()
        assert check_btree_bounds(tree.root, NEG_INF, POS_INF) is True
        assert tree.corrupt_key(7, 500) is True
        assert btree_invariant(tree) is False

    def test_depth_uniform(self):
        tree = self._tree(64)
        depth = check_btree_depth(tree.root)
        assert depth >= 2
        # Graft an extra level under one child: depths disagree.
        from repro.structures.btree import BTreeNode

        deep = BTreeNode(tree.t, leaf=True)
        deep.keys[0] = -1
        deep.n = 1
        leaf_parent = tree.root
        while not leaf_parent.children[0].leaf:
            leaf_parent = leaf_parent.children[0]
        leaf_parent.children[0].leaf = False
        leaf_parent.children[0].children[0] = deep
        assert check_btree_depth(tree.root) == -1

    def test_sorted_detects_swap(self):
        tree = self._tree()
        node = tree.root
        while not node.leaf:
            node = node.children[0]
        if node.n >= 2:
            node.keys[0], node.keys[1] = node.keys[1], node.keys[0]
            assert btree_invariant(tree) is False


class TestIncrementalBTree:
    def test_agrees_under_churn(self, engine_factory):
        engine = engine_factory(btree_invariant)
        tree = BTree(t=3)
        rng = random.Random(71)
        keys: set[int] = set()
        assert engine.run(tree) is True
        for _ in range(200):
            if rng.random() < 0.55 or not keys:
                k = rng.randrange(2000)
                tree.insert(k)
                keys.add(k)
            else:
                k = rng.choice(sorted(keys))
                tree.delete(k)
                keys.discard(k)
            assert engine.run(tree) == btree_invariant(tree) is True
        engine.validate()

    def test_detects_and_recovers_from_corruption(self, engine_factory):
        engine = engine_factory(btree_invariant)
        tree = BTree(t=2)
        for k in range(40):
            tree.insert(k)
        assert engine.run(tree) is True
        tree.corrupt_key(20, -100)
        assert engine.run(tree) == btree_invariant(tree) is False
        tree.corrupt_key(-100, 20)
        assert engine.run(tree) == btree_invariant(tree) is True

    def test_local_insert_reuses_graph(self, engine_factory):
        engine = engine_factory(btree_invariant)
        tree = BTree(t=4)
        for k in range(0, 2000, 2):
            tree.insert(k)
        engine.run(tree)
        graph = engine.graph_size
        tree.insert(1001)  # leaf insert, no split at this fill level
        report = engine.run_with_report(tree)
        assert report.result is True
        assert report.delta["execs"] < graph * 0.2
