"""Stateful property machines for the extension structures and the two
applications — the same master invariant (incremental == from-scratch, plus
engine self-validation) over AVL trees, heaps, skip lists, deques, the
disjoint heap pair, Netcols, and JSO."""

from __future__ import annotations

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DittoEngine, reset_tracking
from repro.apps import (
    JsObfuscator,
    NetcolsGame,
    generate_program,
    jso_invariant,
    netcols_invariant,
)
from repro.structures import (
    AVLTree,
    BinaryHeap,
    BTree,
    DisjointHeapPair,
    DoublyLinkedList,
    Rope,
    SkipList,
    avl_invariant,
    btree_invariant,
    dll_invariant,
    heap_invariant,
    heaps_disjoint,
    rope_invariant,
    skip_list_invariant,
)

_MACHINE_SETTINGS = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)


class _SingleEngineMachine(RuleBasedStateMachine):
    entry = None

    def _setup(self):
        reset_tracking()
        self.engine = DittoEngine(self.entry, recursion_limit=None)

    def teardown(self):
        self.engine.close()
        reset_tracking()

    def check_args(self):
        raise NotImplementedError

    @invariant()
    def incremental_equals_scratch(self):
        args = self.check_args()
        expected = self.entry(*args)
        assert self.engine.run(*args) == expected
        self.engine.validate()


class AVLMachine(_SingleEngineMachine):
    entry = avl_invariant

    @initialize()
    def setup(self):
        self._setup()
        self.tree = AVLTree()
        self.keys: set[int] = set()

    def check_args(self):
        return (self.tree,)

    @rule(key=st.integers(0, 60))
    def insert(self, key):
        self.tree.insert(key)
        self.keys.add(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def delete(self, data):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        self.tree.delete(key)
        self.keys.discard(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data(), height=st.integers(0, 5))
    def corrupt_and_restore(self, data, height):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        # Snapshot, corrupt, verify detection parity, restore.
        node = self.tree.root
        while node is not None and node.key != key:
            node = node.left if key < node.key else node.right
        assert node is not None
        original = node.height
        node.height = height
        expected = avl_invariant(self.tree)
        assert self.engine.run(self.tree) == expected
        node.height = original


class HeapMachine(_SingleEngineMachine):
    entry = heap_invariant

    @initialize()
    def setup(self):
        self._setup()
        self.heap = BinaryHeap(capacity=8)

    def check_args(self):
        return (self.heap,)

    @rule(value=st.integers(-50, 50))
    def push(self, value):
        self.heap.push(value)

    @precondition(lambda self: len(self.heap) > 0)
    @rule()
    def pop(self):
        self.heap.pop()


class SkipListMachine(_SingleEngineMachine):
    entry = skip_list_invariant

    @initialize()
    def setup(self):
        self._setup()
        self.sl = SkipList(seed=1337)
        self.values: set[int] = set()

    def check_args(self):
        return (self.sl,)

    @rule(value=st.integers(0, 60))
    def insert(self, value):
        self.sl.insert(value)
        self.values.add(value)

    @precondition(lambda self: self.values)
    @rule(data=st.data())
    def delete(self, data):
        value = data.draw(st.sampled_from(sorted(self.values)))
        self.sl.delete(value)
        self.values.discard(value)


class DequeMachine(_SingleEngineMachine):
    entry = dll_invariant

    @initialize()
    def setup(self):
        self._setup()
        self.lst = DoublyLinkedList()
        self.counter = 0

    def check_args(self):
        return (self.lst,)

    @rule()
    def push_front(self):
        self.lst.push_front(self.counter)
        self.counter += 1

    @rule()
    def push_back(self):
        self.lst.push_back(self.counter)
        self.counter += 1

    @precondition(lambda self: len(self.lst) > 0)
    @rule()
    def pop_front(self):
        self.lst.pop_front()

    @precondition(lambda self: len(self.lst) > 0)
    @rule()
    def pop_back(self):
        self.lst.pop_back()


class BTreeMachine(_SingleEngineMachine):
    entry = btree_invariant

    @initialize()
    def setup(self):
        self._setup()
        self.tree = BTree(t=2)
        self.keys: set[int] = set()

    def check_args(self):
        return (self.tree,)

    @rule(key=st.integers(0, 60))
    def insert(self, key):
        self.tree.insert(key)
        self.keys.add(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def delete(self, data):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        self.tree.delete(key)
        self.keys.discard(key)

    @invariant()
    def model_agrees(self):
        assert list(self.tree.keys()) == sorted(self.keys)


class DisjointPairMachine(_SingleEngineMachine):
    entry = heaps_disjoint

    @initialize()
    def setup(self):
        self._setup()
        self.pair = DisjointHeapPair(capacity=32)
        self.counter = 0

    def check_args(self):
        return (self.pair,)

    @rule()
    def submit(self):
        self.pair.submit(self.counter)
        self.counter += 1

    @rule()
    def activate(self):
        self.pair.activate()

    @rule()
    def complete(self):
        self.pair.complete()

    @rule()
    def suspend(self):
        self.pair.suspend()


class RopeMachine(_SingleEngineMachine):
    entry = rope_invariant

    @initialize()
    def setup(self):
        self._setup()
        self.rope = Rope("initial text")
        self.model = "initial text"

    def check_args(self):
        return (self.rope,)

    @rule(position=st.integers(0, 1000),
          text=st.text(alphabet="abcxyz", min_size=1, max_size=6))
    def insert(self, position, text):
        index = position % (len(self.model) + 1)
        self.rope.insert(index, text)
        self.model = self.model[:index] + text + self.model[index:]

    @precondition(lambda self: len(self.model) > 2)
    @rule(position=st.integers(0, 1000), span=st.integers(1, 5))
    def delete(self, position, span):
        start = position % len(self.model)
        stop = min(len(self.model), start + span)
        self.rope.delete(start, stop)
        self.model = self.model[:start] + self.model[stop:]

    @invariant()
    def text_matches_model(self):
        assert str(self.rope) == self.model


class NetcolsMachine(_SingleEngineMachine):
    entry = netcols_invariant

    @initialize()
    def setup(self):
        self._setup()
        self.game = NetcolsGame(6, 12)

    def check_args(self):
        return (self.game,)

    @rule(col=st.integers(0, 5), colors=st.tuples(
        st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)))
    def drop(self, col, colors):
        if self.game.column_free(col) >= 3 and not self.game.game_over:
            self.game.drop_piece(col, colors)


class JsoMachine(_SingleEngineMachine):
    entry = jso_invariant

    @initialize()
    def setup(self):
        self._setup()
        self.jso = JsObfuscator()
        self.chunks = iter(generate_program(500, seed=77))
        self.fed: list[str] = []

    def check_args(self):
        return (self.jso,)

    @rule()
    def feed_declaration(self):
        self.jso.feed(next(self.chunks))

    @precondition(lambda self: self.jso.names is not None)
    @rule()
    def drop_newest(self):
        assert self.jso.names is not None
        self.jso.drop_name(self.jso.names.value)


for machine in (
    AVLMachine, HeapMachine, SkipListMachine, DequeMachine,
    BTreeMachine, DisjointPairMachine, RopeMachine, NetcolsMachine,
    JsoMachine,
):
    case = machine.TestCase
    case.settings = _MACHINE_SETTINGS
    globals()[f"Test{machine.__name__}"] = case
del case
