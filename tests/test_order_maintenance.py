"""Order-maintenance list (Bender et al.): order queries, relabeling, and a
hypothesis model check against a plain Python list."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import OrderList


class TestBasics:
    def test_empty(self):
        ol = OrderList()
        assert len(ol) == 0
        assert list(ol) == []

    def test_insert_first_last(self):
        ol = OrderList()
        b = ol.insert_first()
        c = ol.insert_last()
        a = ol.insert_first()
        assert ol.order(a, b) and ol.order(b, c) and ol.order(a, c)
        assert len(ol) == 3

    def test_insert_after_between(self):
        ol = OrderList()
        a = ol.insert_first()
        c = ol.insert_after(a)
        b = ol.insert_after(a)
        assert ol.order(a, b) and ol.order(b, c)

    def test_insert_before(self):
        ol = OrderList()
        b = ol.insert_first()
        a = ol.insert_before(b)
        assert ol.order(a, b)

    def test_delete(self):
        ol = OrderList()
        a = ol.insert_first()
        b = ol.insert_after(a)
        ol.delete(a)
        assert len(ol) == 1
        assert not a.alive
        assert b.alive
        ol.delete(a)  # idempotent
        assert len(ol) == 1

    def test_foreign_record_rejected(self):
        ol1, ol2 = OrderList(), OrderList()
        a = ol1.insert_first()
        with pytest.raises(ValueError):
            ol2.order(a, a)
        with pytest.raises(ValueError):
            ol2.insert_after(a)
        with pytest.raises(ValueError):
            ol2.insert_before(a)

    def test_iteration_follows_order(self):
        ol = OrderList()
        records = [ol.insert_last() for _ in range(10)]
        assert list(ol) == records


class TestRelabeling:
    def test_repeated_insert_after_same_point(self):
        """Inserting always after the head forces label collisions and
        triggers relabeling; order must survive."""
        ol = OrderList()
        anchor = ol.insert_first()
        records = []
        for _ in range(2000):
            records.append(ol.insert_after(anchor))
        # records were inserted right after anchor: newest first.
        expected = [anchor] + records[::-1]
        assert list(ol) == expected
        labels = [record.label for record in ol]
        assert labels == sorted(labels)
        assert len(set(labels)) == len(labels)

    def test_repeated_append(self):
        ol = OrderList()
        last = ol.insert_first()
        chain = [last]
        for _ in range(2000):
            last = ol.insert_after(last)
            chain.append(last)
        assert list(ol) == chain

    def test_alternating_pattern(self):
        ol = OrderList()
        pivot = ol.insert_first()
        for i in range(500):
            if i % 2:
                ol.insert_after(pivot)
            else:
                ol.insert_before(pivot)
        labels = [record.label for record in ol]
        assert labels == sorted(set(labels))


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["after", "before", "delete"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=120,
    )
)
def test_model_equivalence(ops):
    """The OrderList agrees with a plain Python list used as a model."""
    ol = OrderList()
    model = [ol.insert_first()]
    for op, pick in ops:
        index = pick % len(model)
        target = model[index]
        if op == "after":
            model.insert(index + 1, ol.insert_after(target))
        elif op == "before":
            model.insert(index, ol.insert_before(target))
        elif len(model) > 1:
            ol.delete(target)
            model.pop(index)
    assert list(ol) == model
    for i in range(len(model) - 1):
        assert ol.order(model[i], model[i + 1])
