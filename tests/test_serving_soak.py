"""Concurrency soak + re-entrancy guards (satellite: thread-safety).

The soak drives N threads over M tenants (disjoint subsets, fixed seed)
through one shared pool and diffs every answer against the QA scratch
oracle — any cross-tenant bleed under real thread interleaving shows up
as a divergence.  The re-entrancy tests pin down the engine's
single-threaded contract: a ``run()`` started while another is live on
the same engine fails fast with :class:`EngineBusyError`, never corrupts.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import DittoEngine
from repro.core.errors import EngineBusyError
from repro.core.tracked import TrackingState
from repro.instrument.registry import check as as_check
from repro.qa.models import get_model
from repro.qa.trace import CHECK
from repro.serving import OK, EnginePool, PoolConfig

pytestmark = pytest.mark.serving

THREADS = 4
TENANTS_PER_THREAD = 6
ROUNDS = 25
SEED = 1234


def test_soak_threads_over_disjoint_tenants_match_scratch_oracle():
    model = get_model("ordered_list")
    original = as_check(model.entry).original
    keys = [f"soak-{i}" for i in range(THREADS * TENANTS_PER_THREAD)]

    pool = EnginePool(PoolConfig(shards=4, workers=THREADS, max_queue=256))
    try:
        structures, replicas, rngs = {}, {}, {}
        for i, key in enumerate(keys):
            pool.register(key, model.entry)
            structures[key] = model.fresh()
            replicas[key] = model.fresh()
            rngs[key] = random.Random(SEED * 7919 + i)

        divergences: list = []
        failures: list = []

        def worker(mine: list) -> None:
            try:
                for _round in range(ROUNDS):
                    for key in mine:
                        ops = [
                            op
                            for op in model.random_ops(rngs[key])
                            if op.name != CHECK
                        ]
                        for op in ops:
                            pool.mutate(key, model.apply, structures[key], op)
                            model.apply(replicas[key], op)
                        args = pool.mutate(
                            key, model.check_args, structures[key]
                        )
                        res = pool.check(key, *args)
                        if res.status != OK:
                            divergences.append((key, _round, res))
                            continue
                        expected = original(*model.check_args(replicas[key]))
                        if repr(res.value) != repr(expected):
                            divergences.append(
                                (key, _round, res.value, expected)
                            )
            except BaseException as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        threads = [
            threading.Thread(
                target=worker,
                args=(keys[t * TENANTS_PER_THREAD:(t + 1)
                           * TENANTS_PER_THREAD],),
            )
            for t in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not failures, failures
        assert not divergences, divergences[:5]
        stats = pool.stats()
        assert stats["checks_ok"] == THREADS * TENANTS_PER_THREAD * ROUNDS
        assert stats["shed"] == 0, "soak load must not shed (queue is ample)"
        assert stats["queue_depth"] == 0
    finally:
        pool.close()


# Re-entrancy guards. --------------------------------------------------------


class Cell:
    pass


def _small_list_engine(hook=None):
    """A tiny ordered-list engine over the QA model, with its own domain."""
    model = get_model("ordered_list")
    engine = DittoEngine(
        model.entry,
        tracking=TrackingState(),
        step_hook=hook,
        step_hook_interval=1,
    )
    structure = model.fresh()
    rng = random.Random(99)
    # An empty list checks in zero instrumented steps (no hook ticks):
    # keep mutating until there is something to traverse.
    while model.check_args(structure) == (None,):
        for op in model.random_ops(rng):
            if op.name != CHECK:
                model.apply(structure, op)
    return engine, model, structure


def test_check_inside_a_running_check_raises_engine_busy():
    state = Cell()
    state.caught = []

    def reenter(engine):
        if not state.caught:
            try:
                engine.run(*state.args)
            except EngineBusyError as exc:
                state.caught.append(exc)

    engine, model, structure = _small_list_engine(hook=reenter)
    try:
        state.args = model.check_args(structure)
        value = engine.run(*state.args)
        assert value is True
        assert len(state.caught) == 1, (
            "the nested run must fail fast with EngineBusyError"
        )
        assert isinstance(state.caught[0], EngineBusyError)
        # The outer run was unharmed: the engine still answers correctly.
        assert engine.run(*state.args) is True
    finally:
        engine.close()


def test_concurrent_runs_on_one_engine_fail_fast_not_corrupt():
    started, release = threading.Event(), threading.Event()

    def wedge(engine):
        started.set()
        release.wait(5)

    engine, model, structure = _small_list_engine(hook=wedge)
    try:
        args = model.check_args(structure)
        outcome: list = []

        def first():
            outcome.append(engine.run(*args))

        t = threading.Thread(target=first)
        t.start()
        assert started.wait(5), "first run never reached its hook"
        with pytest.raises(EngineBusyError):
            engine.run(*args)
        release.set()
        t.join(5)
        assert outcome == [True]
        assert engine.run(*args) is True
    finally:
        engine.close()


def test_pool_surfaces_reentrancy_as_an_error_result():
    """A tenant whose check re-enters its own engine gets a clean error
    result carrying EngineBusyError — the pool never deadlocks on it."""
    model = get_model("ordered_list")
    with EnginePool(PoolConfig(step_hook_interval=1)) as pool:
        engine = pool.register("t", model.entry)
        structure = model.fresh()
        rng = random.Random(5)
        # Mutate until the structure is non-trivial: an empty list checks
        # in zero instrumented steps, so the hook would never tick.
        while model.check_args(structure) == (None,):
            for op in model.random_ops(rng):
                if op.name != CHECK:
                    pool.mutate("t", model.apply, structure, op)
        args = pool.mutate("t", model.check_args, structure)

        pool.set_step_probe("t", lambda: engine.run(*args))
        res = pool.check("t", *args)
        assert res.status == "error"
        assert isinstance(res.error, EngineBusyError)
        pool.set_step_probe("t", None)
        assert pool.check("t", *args).unwrap() is True
