"""Multiple engines and invariants coexisting (paper §4: "The
implementation of DITTO supports multiple invariants per class
instantiation, multiple class instantiations per class, and multiple
classes")."""

from __future__ import annotations

from repro import TrackedObject, check, tracking_state


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def multi_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return multi_ordered(e.next)


@check
def multi_all_positive(e):
    if e is None:
        return True
    if e.value <= 0:
        return False
    return multi_all_positive(e.next)


@check
def multi_length(e):
    if e is None:
        return 0
    return 1 + multi_length(e.next)


def build_list(values):
    head = None
    for v in reversed(values):
        head = Elem(v, head)
    return head


class TestMultipleInvariantsOneStructure:
    def test_two_invariants_track_independently(self, engine_factory):
        head = build_list([1, 2, 3])
        ordered = engine_factory(multi_ordered)
        positive = engine_factory(multi_all_positive)
        assert ordered.run(head) is True
        assert positive.run(head) is True
        head.next.value = -5  # breaks both
        assert ordered.run(head) is False
        assert positive.run(head) is False
        head.next.value = 10  # breaks ordering only
        assert ordered.run(head) is False
        assert positive.run(head) is True

    def test_each_engine_sees_every_write_once(self, engine_factory):
        head = build_list([1, 2, 3])
        a = engine_factory(multi_ordered)
        b = engine_factory(multi_ordered)
        a.run(head)
        b.run(head)
        head.value = 0
        ra = a.run_with_report(head)
        rb = b.run_with_report(head)
        assert ra.delta["dirty_execs"] == rb.delta["dirty_execs"] == 1

    def test_lagging_engine_catches_up(self, engine_factory):
        """An engine that skips several checks still sees the union of all
        mutations at its next run."""
        head = build_list([1, 2, 3, 4])
        eager = engine_factory(multi_ordered)
        lazy = engine_factory(multi_ordered)
        eager.run(head)
        lazy.run(head)
        head.value = 0
        eager.run(head)
        head.next.value = 0
        eager.run(head)
        report = lazy.run_with_report(head)
        # Both mutated invocations re-ran (the deeper one inline, while the
        # shallower dirty node executed).
        assert report.delta["execs"] >= 2
        assert report.result is True  # 0, 0, 3, 4 is still ordered

    def test_refcounts_sum_across_engines(self, engine_factory):
        head = build_list([1, 2])
        a = engine_factory(multi_ordered)
        b = engine_factory(multi_all_positive)
        a.run(head)
        count_after_one = head._ditto_refcount
        b.run(head)
        assert head._ditto_refcount > count_after_one
        a.close()
        assert head._ditto_refcount > 0
        b.close()
        assert head._ditto_refcount == 0


class TestMultipleStructures:
    def test_one_engine_many_structures_sequentially(self, engine_factory):
        engine = engine_factory(multi_length)
        lists = [build_list(range(n)) for n in (3, 5, 7)]
        for expected, head in zip((3, 5, 7), lists):
            assert engine.run(head) == expected

    def test_two_engines_two_structures_independent(self, engine_factory):
        a_head = build_list([1, 2, 3])
        b_head = build_list([9, 8])
        a = engine_factory(multi_ordered)
        b = engine_factory(multi_ordered)
        assert a.run(a_head) is True
        assert b.run(b_head) is False
        # Mutating b's structure leaves a's cached graph untouched.
        b_head.value = 0
        report = a.run_with_report(a_head)
        assert report.delta["execs"] == 0
        assert b.run(b_head) is True

    def test_monitored_fields_union(self, engine_factory):
        engine_factory(multi_ordered)
        engine_factory(multi_length)
        state = tracking_state()
        assert state.is_monitored("value")
        assert state.is_monitored("next")


class TestSharedSubstructure:
    def test_two_lists_sharing_a_tail(self, engine_factory):
        tail = build_list([10, 20])
        a_head = Elem(1, tail)
        b_head = Elem(2, tail)
        a = engine_factory(multi_ordered)
        b = engine_factory(multi_ordered)
        assert a.run(a_head) is True
        assert b.run(b_head) is True
        tail.value = 0  # breaks both lists through the shared suffix
        assert a.run(a_head) is False
        assert b.run(b_head) is False

    def test_shared_tail_within_one_engine(self, engine_factory):
        """Two roots checked alternately share memo entries for the common
        suffix only while re-anchoring allows; mutation of the suffix is
        seen whichever root runs next."""
        tail = build_list([5, 6, 7])
        a_head = Elem(1, tail)
        engine = engine_factory(multi_ordered)
        assert engine.run(a_head) is True
        tail.next.value = 0
        assert engine.run(a_head) is False
