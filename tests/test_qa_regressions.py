"""Shrunk QA reproducers, pinned as regressions.

Each trace here is the delta-debugged minimal form of a divergence (or a
near-miss) found while standing up the differential fuzzer.  They are
hardcoded — not regenerated — so the exact op sequence that exposed each
behaviour keeps running forever, independent of generator changes.
"""

from __future__ import annotations

from repro.qa import CHECK_OP, Op, Oracle, Trace, fault_op, replay_trace
from repro.qa.generator import TraceGenerator
from repro.qa.shrinker import Shrinker

# The canonical 5-op reproducer the shrinker produces from a ~300-op
# drop-writes drill: build a sorted 2-element list, memoize the check,
# drop exactly one write barrier, corrupt the head.  Scratch sees the
# unsorted list; both incremental engines serve the stale True.
DROP_WRITES_REPRO = Trace(
    "ordered_list",
    0,
    [
        Op("insert", (1,)),
        Op("insert", (5,)),
        CHECK_OP,
        fault_op("drop_writes", 1),
        Op("corrupt", (0, 99)),
    ],
)

# Latent corrupt-returns consumption: poison the deepest cached node
# (is_ordered of the tail), then dirty the middle cell with a write that
# keeps the list sorted.  The middle node re-executes, reuses the
# poisoned child cache, and ditto reports False on a sorted list.
CORRUPT_RETURNS_REPRO = Trace(
    "ordered_list",
    0,
    [
        Op("insert", (1,)),
        Op("insert", (2,)),
        Op("insert", (3,)),
        CHECK_OP,
        fault_op("corrupt_returns", 1),
        Op("corrupt", (1, 1)),
    ],
)


class TestPinnedReproducers:
    def test_drop_writes_repro_still_diverges(self):
        report = replay_trace(DROP_WRITES_REPRO)
        assert not report.ok
        d = report.divergences[0]
        assert d.kind == "return_mismatch"
        assert d.details["scratch"] == ("value", False)
        # The write log is global: dropping a barrier blinds *both*
        # incremental strategies, not just the optimistic one.
        assert d.details["ditto"] == ("value", True)
        assert d.details["naive"] == ("value", True)

    def test_drop_writes_repro_is_already_minimal(self):
        result = Shrinker(
            DROP_WRITES_REPRO, kind="return_mismatch", max_replays=500
        ).shrink()
        assert len(result) == len(DROP_WRITES_REPRO)

    def test_committed_fixture_matches_and_reproduces(self):
        """CI replays ``tests/fixtures/qa_repro_drop_writes.json`` with
        ``--expect-divergence``; keep the committed artifact in lockstep
        with the canonical trace above."""
        import os

        path = os.path.join(
            os.path.dirname(__file__), "fixtures", "qa_repro_drop_writes.json"
        )
        fixture = Trace.load(path)
        assert fixture.structure == DROP_WRITES_REPRO.structure
        assert fixture.ops == DROP_WRITES_REPRO.ops
        assert not replay_trace(fixture).ok

    def test_corrupt_returns_repro_still_diverges(self):
        report = replay_trace(CORRUPT_RETURNS_REPRO)
        assert not report.ok
        d = report.divergences[0]
        assert d.kind == "return_mismatch"
        assert d.details["scratch"] == ("value", True)
        assert d.details["ditto"] == ("value", False)


class TestNearMisses:
    """Traces that *look* like they should diverge but must not — each
    documents a subtlety that cost debugging time during bring-up."""

    def test_stale_false_equals_fresh_false(self):
        """A dropped write only diverges if the mutation flips the check
        result.  Corrupting an already-unsorted list under a dropped
        barrier keeps every mode at False — no divergence, by design."""
        trace = Trace(
            "ordered_list",
            0,
            [
                Op("insert", (5,)),
                Op("insert", (1,)),
                Op("corrupt", (0, 99)),  # [99, 5] — already unsorted
                CHECK_OP,
                fault_op("drop_writes", 1),
                Op("corrupt", (1, 0)),  # stale False == fresh False
            ],
        )
        assert replay_trace(trace).ok

    def test_corrupt_returns_is_latent_until_consumed(self):
        """Optimistic reuse serves the *root's* cached value; a poisoned
        deep return stays invisible until a dirty write forces the
        caller chain through it.  No consuming write => no divergence."""
        trace = Trace(
            "ordered_list",
            0,
            [
                Op("insert", (1,)),
                Op("insert", (2,)),
                Op("insert", (3,)),
                CHECK_OP,
                fault_op("corrupt_returns", 1),
                CHECK_OP,
            ],
        )
        assert replay_trace(trace).ok

    def test_benign_dropped_write_does_not_diverge(self):
        """Dropping the barrier of a sortedness-preserving insert leaves
        the memoized True accidentally correct."""
        trace = Trace(
            "ordered_list",
            0,
            [
                Op("insert", (1,)),
                CHECK_OP,
                fault_op("drop_writes", 1),
                Op("insert", (2,)),
            ],
        )
        assert replay_trace(trace).ok


class TestGeneratorHazards:
    """Op-space hazards fixed during bring-up: the generator must never
    emit them, but hand-written traces still exercise the model paths."""

    def test_btree_corpus_never_emits_corrupt_count(self):
        """``corrupt_count`` was removed from the B-tree op specs: an
        out-of-range key count makes the *check itself* crash comparing
        None keys, which the oracle would misread as a divergence."""
        for seed in range(6):
            trace = TraceGenerator(
                "btree", seed=seed, op_count=400
            ).generate()
            assert all(op.name != "corrupt_count" for op in trace.ops)

    def test_btree_corrupt_count_still_applies_by_hand(self):
        """The model keeps the ``apply`` path so saved replay files using
        it remain loadable; a +1/-1 round trip replays clean."""
        trace = Trace(
            "btree",
            0,
            [
                Op("insert", (1, 1)),
                Op("insert", (2, 2)),
                Op("insert", (3, 3)),
                CHECK_OP,
                Op("corrupt_count", (1,)),
                CHECK_OP,
                Op("corrupt_count", (-1,)),
                CHECK_OP,
            ],
        )
        report = Oracle("btree", stop_on_divergence=False).run(trace)
        # The corrupted middle check may disagree or raise on every mode
        # alike; what matters is the trace applies end-to-end and the
        # final reverted state agrees.
        assert report.ops_applied == 5

    def test_reversible_corruption_triples_stay_paired(self):
        """Models whose mutators need internal consistency emit their
        corruptions as corrupt/check/revert triples; shrinking must be
        able to keep or drop them atomically, which requires the corrupt
        op to be immediately followed by a check in generated traces."""
        for name in ("red_black_tree", "avl_tree", "btree", "rope",
                     "doubly_linked_list", "disjointness"):
            trace = TraceGenerator(name, seed=0, op_count=400).generate()
            ops = trace.ops
            for i, op in enumerate(ops):
                if not op.name.startswith("corrupt"):
                    continue
                # Either the corruption itself (check follows) or the
                # revert half of a symmetric triple (check precedes).
                followed = i + 1 < len(ops) and ops[i + 1].name == "@check"
                preceded = i > 0 and ops[i - 1].name == "@check"
                assert followed or preceded, (name, i, op)
