"""GraphAuditor: a clean graph passes; every corruption class is caught.

The auditor is the resilience layer's first line of defence: it re-derives
the computation graph's representation invariants (memo keys, reverse map,
edges, order records, reference counts, propagation post-conditions) and
reports violations instead of asserting.  These tests corrupt each
dimension deliberately and assert the matching rule fires — detection is
proved, not assumed.

Run with ``--engine-mode=naive`` to exercise the same matrix under the
Figure 6 naive incrementalizer (CI does both).
"""

from __future__ import annotations

import pytest

from repro import ArgsKey, GraphAuditError, TrackedObject, check
from repro.resilience import GraphAuditor

pytestmark = pytest.mark.resilience


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def aud_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return aud_ordered(e.next)


def build(*values):
    head = None
    for v in reversed(values):
        head = Elem(v, head)
    return head


@pytest.fixture
def warm_engine(engine_factory, engine_mode):
    """An engine with a five-node graph that has been run incrementally."""
    engine = engine_factory(aud_ordered, mode=engine_mode)
    head = build(1, 2, 3, 4, 5, 6)
    assert engine.run(head) is True
    head.next.value = 2  # benign mutation: exercises the repair machinery
    assert engine.run(head) is True
    return engine, head


class TestCleanGraph:
    def test_clean_graph_audits_ok(self, warm_engine):
        engine, _ = warm_engine
        report = engine.audit()
        assert report.ok
        assert report.nodes_audited == engine.graph_size
        assert set(report.rules_run) == {
            "table-keys",
            "reverse-map",
            "edges",
            "node-state",
            "order",
            "scheduling",
            "refcounts",
        }

    def test_empty_graph_audits_ok(self, engine_factory, engine_mode):
        engine = engine_factory(aud_ordered, mode=engine_mode)
        report = engine.audit()
        assert report.ok
        assert report.nodes_audited == 0

    def test_audit_counted_in_stats(self, warm_engine):
        engine, _ = warm_engine
        engine.audit()
        engine.audit()
        assert engine.stats.audits == 2
        assert engine.stats.audit_failures == 0

    def test_audit_ok_after_every_soak_step(self, engine_factory,
                                            engine_mode):
        """The audit must never false-positive across a realistic mutation
        sequence (inserts, updates, deletions, retargets)."""
        engine = engine_factory(aud_ordered, mode=engine_mode)
        head = build(1, 3, 5, 7, 9)
        assert engine.run(head) is True
        mutations = [
            lambda: setattr(head.next, "value", 4),
            lambda: setattr(head, "next", Elem(2, head.next)),
            lambda: setattr(head.next, "next", head.next.next.next),
            lambda: setattr(head, "value", 0),
            lambda: setattr(head.next.next, "value", 100),
        ]
        for mutate in mutations:
            mutate()
            engine.run(head)
            assert engine.audit().ok


def _a_node_with_implicits(engine):
    for node in engine.table:
        if node.implicits:
            return node
    raise AssertionError("no node with implicit arguments")


class TestCorruptionDetection:
    """Each deliberately corrupted invariant produces a finding under the
    matching rule (and ``engine.audit()`` raises by default)."""

    def test_table_key_mismatch(self, warm_engine):
        engine, _ = warm_engine
        node = next(iter(engine.table))
        engine.table._entries[(node.func.uid, ArgsKey(("bogus",)))] = node
        report = engine.audit(raise_on_failure=False)
        assert report.by_rule("table-keys")

    def test_reverse_map_missing_entry(self, warm_engine):
        engine, _ = warm_engine
        node = _a_node_with_implicits(engine)
        location = next(iter(node.implicits))
        engine.table._reverse[location].discard(node)
        report = engine.audit(raise_on_failure=False)
        assert report.by_rule("reverse-map")

    def test_reverse_map_phantom_dependent(self, warm_engine):
        engine, _ = warm_engine
        node = _a_node_with_implicits(engine)
        location = next(iter(node.implicits))
        other = next(n for n in engine.table if location not in n.implicits)
        engine.table._reverse[location].add(other)
        report = engine.audit(raise_on_failure=False)
        assert report.by_rule("reverse-map")

    def test_edge_multiplicity_mismatch(self, warm_engine):
        engine, _ = warm_engine
        node = next(n for n in engine.table if n.calls)
        node.calls.append(node.calls[0])  # phantom call edge
        report = engine.audit(raise_on_failure=False)
        assert report.by_rule("edges")

    def test_dirty_node_left_behind(self, warm_engine):
        engine, _ = warm_engine
        next(iter(engine.table)).dirty = True
        report = engine.audit(raise_on_failure=False)
        assert report.by_rule("node-state")

    def test_dead_order_record(self, warm_engine):
        engine, _ = warm_engine
        node = next(iter(engine.table))
        engine.order.delete(node.order_rec)
        report = engine.audit(raise_on_failure=False)
        assert report.by_rule("order")

    def test_stale_caller_ticks(self, warm_engine):
        engine, _ = warm_engine
        node = next(
            n
            for n in engine.table
            if any(c is not engine._anchor for c in n.callers)
        )
        node.value_tick = 10**9  # "value changed after every caller ran"
        report = engine.audit(raise_on_failure=False)
        assert report.by_rule("scheduling")

    def test_undercounted_refcount(self, warm_engine):
        engine, _ = warm_engine
        node = _a_node_with_implicits(engine)
        container = next(iter(node.implicits)).container
        container._ditto_refcount = 0
        report = engine.audit(raise_on_failure=False)
        assert report.by_rule("refcounts")

    def test_audit_raises_by_default(self, warm_engine):
        engine, _ = warm_engine
        next(iter(engine.table)).dirty = True
        with pytest.raises(GraphAuditError) as exc_info:
            engine.audit()
        assert exc_info.value.report.by_rule("node-state")
        assert engine.stats.audit_failures == 1

    def test_findings_capped_per_rule(self, engine_factory, engine_mode):
        engine = engine_factory(aud_ordered, mode=engine_mode)
        head = build(*range(100))
        engine.run(head)
        for node in engine.table:
            node.dirty = True
        report = engine.audit(raise_on_failure=False)
        per_rule = report.by_rule("node-state")
        assert len(per_rule) <= GraphAuditor.MAX_FINDINGS_PER_RULE + 1
        assert "truncated" in str(per_rule[-1])


class TestParanoiaMode:
    def test_paranoia_audits_every_nth_run(self, engine_factory,
                                           engine_mode):
        engine = engine_factory(aud_ordered, mode=engine_mode, paranoia=2)
        head = build(1, 2, 3)
        for i in range(6):
            head.value = -i  # stays ordered
            engine.run(head)
        assert engine.stats.audits == 3
        assert engine.stats.verify_checks == 3
        assert engine.stats.audit_failures == 0
        assert engine.stats.verify_mismatches == 0

    def test_paranoia_disabled_by_default(self, warm_engine):
        engine, _ = warm_engine
        assert engine.stats.audits == 0
        assert engine.stats.verify_checks == 0

    def test_paranoia_rejects_negative(self, engine_factory):
        with pytest.raises(ValueError):
            engine_factory(aud_ordered, paranoia=-1)

    def test_paranoia_raises_without_policy(self, engine_factory,
                                            engine_mode):
        """Paranoia without a DegradationPolicy escalates instead of
        degrading: a corrupted graph raises GraphAuditError."""
        engine = engine_factory(aud_ordered, mode=engine_mode, paranoia=1)
        head = build(1, 2, 3)
        engine.run(head)
        # Corrupt the deepest node's value tick: neither mode re-executes
        # it for a head-value mutation, so the corruption survives the run
        # and the post-run audit must catch it.
        deepest = max(engine.table, key=lambda n: n.depth)
        deepest.value_tick = 10**9
        head.value = 0
        with pytest.raises(GraphAuditError):
            engine.run(head)
