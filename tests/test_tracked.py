"""Write-barrier substrate: TrackedObject / TrackedArray / TrackedList and
the global WriteLog with its two §4 filters (monitored fields, refcounts)."""

from __future__ import annotations

import pytest

from repro import TrackedArray, TrackedList, TrackedObject, tracking_state
from repro.core.locations import (
    FieldLocation,
    IndexLocation,
    LengthLocation,
    RangeLocation,
)
from repro.core.tracked import WriteLog, is_tracked


class Cell(TrackedObject):
    def __init__(self, value=0):
        self.value = value
        self.next = None


def _monitor(*fields):
    tracking_state().monitor_fields(fields)


def _covers_slot(logged, container, index):
    """True if some logged location (point or coalesced range) names
    ``container[index]``."""
    for loc in logged:
        if loc.container is not container:
            continue
        if isinstance(loc, IndexLocation) and loc.index == index:
            return True
        if isinstance(loc, RangeLocation) and loc.covers(index):
            return True
    return False


class TestTrackedObjectBarrier:
    def test_no_log_when_refcount_zero(self):
        _monitor("value")
        cid = tracking_state().write_log.register()
        c = Cell()
        c.value = 5
        assert tracking_state().write_log.consume(cid) == []

    def test_no_log_when_field_unmonitored(self):
        cid = tracking_state().write_log.register()
        c = Cell()
        c._ditto_incref()
        c.value = 5
        assert tracking_state().write_log.consume(cid) == []

    def test_logs_when_monitored_and_referenced(self):
        _monitor("value")
        cid = tracking_state().write_log.register()
        c = Cell()
        c._ditto_incref()
        c.value = 5
        assert tracking_state().write_log.consume(cid) == [
            FieldLocation(c, "value")
        ]

    def test_underscore_fields_never_logged(self):
        _monitor("_private")
        cid = tracking_state().write_log.register()
        c = Cell()
        c._ditto_incref()
        c._private = 1
        assert tracking_state().write_log.consume(cid) == []

    def test_refcount_round_trip(self):
        c = Cell()
        assert c._ditto_refcount == 0
        c._ditto_incref()
        c._ditto_incref()
        assert c._ditto_refcount == 2
        c._ditto_decref()
        assert c._ditto_refcount == 1

    def test_is_tracked(self):
        assert is_tracked(Cell())
        assert is_tracked(TrackedArray(1))
        assert not is_tracked([1])
        assert not is_tracked(42)


class TestTrackedArray:
    def test_init_from_size_and_iterable(self):
        assert list(TrackedArray(3)) == [None, None, None]
        assert list(TrackedArray(2, fill=0)) == [0, 0]
        assert list(TrackedArray([1, 2])) == [1, 2]

    def test_read_write(self):
        a = TrackedArray(3)
        a[1] = "x"
        assert a[1] == "x"
        assert len(a) == 3

    def test_barrier_logs_index(self):
        cid = tracking_state().write_log.register()
        a = TrackedArray(3)
        a._ditto_incref()
        a[2] = 7
        assert tracking_state().write_log.consume(cid) == [
            IndexLocation(a, 2)
        ]

    def test_negative_index_normalized_in_log(self):
        cid = tracking_state().write_log.register()
        a = TrackedArray(3)
        a._ditto_incref()
        a[-1] = 7
        assert tracking_state().write_log.consume(cid) == [
            IndexLocation(a, 2)
        ]
        assert a[2] == 7

    def test_no_log_without_refcount(self):
        cid = tracking_state().write_log.register()
        a = TrackedArray(3)
        a[0] = 1
        assert tracking_state().write_log.consume(cid) == []

    def test_fill(self):
        a = TrackedArray(3)
        a.fill(9)
        assert list(a) == [9, 9, 9]


class TestTrackedList:
    def test_append_logs_length_and_slot(self):
        cid = tracking_state().write_log.register()
        lst = TrackedList([])
        lst._ditto_incref()
        lst.append("a")
        logged = tracking_state().write_log.consume(cid)
        assert LengthLocation(lst) in logged
        assert IndexLocation(lst, 0) in logged
        assert list(lst) == ["a"]

    def test_pop_covers_shifted_slots(self):
        """A head pop shifts every remaining slot; the barrier must cover
        all of them (since the coalescing overhaul, with one range entry
        rather than per-slot appends)."""
        lst = TrackedList([1, 2, 3])
        lst._ditto_incref()
        cid = tracking_state().write_log.register()
        lst.pop(0)
        logged = tracking_state().write_log.consume(cid)
        for slot in (0, 1, 2):
            assert _covers_slot(logged, lst, slot)
        assert LengthLocation(lst) in logged
        assert list(lst) == [2, 3]

    def test_shift_ops_log_one_coalesced_range(self):
        lst = TrackedList(range(100))
        lst._ditto_incref()
        cid = tracking_state().write_log.register()
        lst.insert(0, -1)
        logged = tracking_state().write_log.consume(cid)
        assert logged == [LengthLocation(lst), RangeLocation(lst, 0, 101)]
        lst.pop(0)
        logged = tracking_state().write_log.consume(cid)
        assert logged == [LengthLocation(lst), RangeLocation(lst, 0, 101)]

    def test_tail_ops_log_point_locations(self):
        """Append and tail pop touch exactly one slot — no range entry."""
        lst = TrackedList([1, 2])
        lst._ditto_incref()
        cid = tracking_state().write_log.register()
        lst.append(3)
        assert tracking_state().write_log.consume(cid) == [
            LengthLocation(lst),
            IndexLocation(lst, 2),
        ]
        lst.pop()
        assert tracking_state().write_log.consume(cid) == [
            LengthLocation(lst),
            IndexLocation(lst, 2),
        ]

    def test_insert_and_remove(self):
        lst = TrackedList([1, 3])
        lst.insert(1, 2)
        assert list(lst) == [1, 2, 3]
        lst.remove(2)
        assert list(lst) == [1, 3]

    def test_pop_default_is_last(self):
        lst = TrackedList([1, 2])
        assert lst.pop() == 2

    def test_insert_clamps_like_list_insert(self):
        """``insert`` past either end clamps exactly as ``list.insert``
        does — and (the confirmed staleness bug) the clamped slot must be
        covered by the log, not skipped by an empty range."""
        lst = TrackedList([1, 2])
        lst._ditto_incref()
        cid = tracking_state().write_log.register()
        lst.insert(99, 3)
        assert list(lst) == [1, 2, 3]
        logged = tracking_state().write_log.consume(cid)
        assert _covers_slot(logged, lst, 2)
        assert LengthLocation(lst) in logged
        lst.insert(-99, 0)
        assert list(lst) == [0, 1, 2, 3]
        logged = tracking_state().write_log.consume(cid)
        for slot in range(4):
            assert _covers_slot(logged, lst, slot)

    def test_failed_mutations_leave_log_unchanged(self):
        """Validation happens before logging: a raising mutator must not
        emit phantom locations (the second confirmed bug — ``pop`` on an
        empty list used to log ``<len>`` and ``IndexLocation(-1)``)."""
        log = tracking_state().write_log
        cid = log.register()
        empty = TrackedList([])
        empty._ditto_incref()
        with pytest.raises(IndexError, match="pop from empty list"):
            empty.pop()
        assert log.consume(cid) == []
        lst = TrackedList([1, 2])
        lst._ditto_incref()
        with pytest.raises(IndexError, match="pop index out of range"):
            lst.pop(5)
        with pytest.raises(IndexError, match="pop index out of range"):
            lst.pop(-3)
        with pytest.raises(IndexError, match="assignment index out of range"):
            lst[7] = 9
        with pytest.raises(IndexError, match="assignment index out of range"):
            lst[-3] = 9
        with pytest.raises(ValueError):
            lst.remove(42)
        assert log.consume(cid) == []
        assert list(lst) == [1, 2]

    def test_fill_logs_one_range(self):
        arr = TrackedArray(5, fill=0)
        arr._ditto_incref()
        cid = tracking_state().write_log.register()
        arr.fill(7)
        assert tracking_state().write_log.consume(cid) == [
            RangeLocation(arr, 0, 5)
        ]
        assert list(arr) == [7] * 5


class TestWriteLog:
    def test_consume_returns_since_cursor(self):
        log = WriteLog()
        cid = log.register()
        a = TrackedArray(1)
        loc = IndexLocation(a, 0)
        log.append(loc)
        assert log.consume(cid) == [loc]
        assert log.consume(cid) == []

    def test_no_consumers_drops_writes(self):
        log = WriteLog()
        a = TrackedArray(1)
        log.append(IndexLocation(a, 0))
        assert len(log) == 0

    def test_two_consumers_both_see_write(self):
        log = WriteLog()
        c1, c2 = log.register(), log.register()
        a = TrackedArray(1)
        loc = IndexLocation(a, 0)
        log.append(loc)
        assert log.consume(c1) == [loc]
        assert log.consume(c2) == [loc]

    def test_dedup_of_unread_duplicates(self):
        log = WriteLog()
        cid = log.register()
        a = TrackedArray(1)
        loc = IndexLocation(a, 0)
        log.append(loc)
        log.append(loc)
        log.append(loc)
        assert log.consume(cid) == [loc]

    def test_dedup_respects_lagging_consumer(self):
        log = WriteLog()
        c1 = log.register()
        c2 = log.register()
        a = TrackedArray(1)
        loc = IndexLocation(a, 0)
        log.append(loc)
        assert log.consume(c1) == [loc]
        # c2 has not read position 0 yet; appending again must not be
        # suppressed for c1 (c1 already consumed the first occurrence).
        log.append(loc)
        assert log.consume(c1) == [loc]
        consumed = log.consume(c2)
        assert loc in consumed

    def test_compaction_after_all_caught_up(self):
        log = WriteLog()
        cid = log.register()
        a = TrackedArray(1)
        for _ in range(10):
            log.append(IndexLocation(a, 0))
            log.consume(cid)
        assert len(log) == 0

    def test_registration_starts_at_end(self):
        log = WriteLog()
        c1 = log.register()
        a = TrackedArray(1)
        log.append(IndexLocation(a, 0))
        c2 = log.register()
        assert log.consume(c2) == []
        assert len(log.consume(c1)) == 1

    def test_unregister_allows_compaction(self):
        log = WriteLog()
        c1 = log.register()
        c2 = log.register()
        a = TrackedArray(1)
        log.append(IndexLocation(a, 0))
        log.consume(c1)
        assert len(log) == 1  # c2 still behind
        log.unregister(c2)
        assert len(log) == 0


class TestMonitoredFields:
    def test_monitor_unmonitor_counts(self):
        state = tracking_state()
        state.monitor_fields(["x", "y"])
        state.monitor_fields(["x"])
        assert state.is_monitored("x")
        state.unmonitor_fields(["x"])
        assert state.is_monitored("x")  # still one engine monitoring
        state.unmonitor_fields(["x"])
        assert not state.is_monitored("x")
        assert state.is_monitored("y")

    def test_monitored_fields_property(self):
        state = tracking_state()
        state.monitor_fields(["a"])
        assert "a" in state.monitored_fields
