"""SkipList and DoublyLinkedList: semantics + incremental invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures import (
    DoublyLinkedList,
    SkipList,
    dll_invariant,
    skip_list_invariant,
)


class TestSkipList:
    def test_insert_contains_iter(self):
        sl = SkipList()
        for v in [5, 1, 9, 3]:
            assert sl.insert(v) is True
        assert sl.insert(5) is False  # duplicate
        assert list(sl) == [1, 3, 5, 9]
        assert 3 in sl and 4 not in sl
        assert len(sl) == 4

    def test_delete(self):
        sl = SkipList()
        for v in range(10):
            sl.insert(v)
        assert sl.delete(5) is True
        assert sl.delete(5) is False
        assert list(sl) == [0, 1, 2, 3, 4, 6, 7, 8, 9]

    def test_levels_shrink_after_deletes(self):
        sl = SkipList()
        for v in range(200):
            sl.insert(v)
        top = sl.level
        for v in range(200):
            sl.delete(v)
        assert len(sl) == 0
        assert sl.level <= top

    def test_deterministic_with_seed(self):
        a, b = SkipList(seed=7), SkipList(seed=7)
        for v in range(50):
            a.insert(v)
            b.insert(v)
        assert a.level == b.level

    def test_corrupt_detected(self):
        sl = SkipList()
        for v in range(20):
            sl.insert(v)
        assert skip_list_invariant(sl) is True
        assert sl.corrupt_value(10, 0) is True  # duplicate of 0: not sorted
        assert skip_list_invariant(sl) is False

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 60)),
                    max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_matches_set_model(self, ops):
        sl = SkipList(seed=99)
        model: set[int] = set()
        for is_insert, value in ops:
            if is_insert:
                assert sl.insert(value) == (value not in model)
                model.add(value)
            else:
                assert sl.delete(value) == (value in model)
                model.discard(value)
        assert list(sl) == sorted(model)
        assert skip_list_invariant(sl) is True

    def test_incremental_agrees(self, engine_factory):
        engine = engine_factory(skip_list_invariant)
        sl = SkipList(seed=41)
        rng = random.Random(41)
        values: set[int] = set()
        engine.run(sl)
        for _ in range(200):
            if rng.random() < 0.5 or not values:
                v = rng.randrange(5000)
                sl.insert(v)
                values.add(v)
            else:
                v = rng.choice(sorted(values))
                sl.delete(v)
                values.discard(v)
            assert engine.run(sl) == skip_list_invariant(sl) is True


class TestDoublyLinkedList:
    def test_push_pop_both_ends(self):
        d = DoublyLinkedList()
        d.push_back(2)
        d.push_front(1)
        d.push_back(3)
        assert list(d) == [1, 2, 3]
        assert d.pop_front() == 1
        assert d.pop_back() == 3
        assert list(d) == [2]

    def test_pop_empty_raises(self):
        d = DoublyLinkedList()
        with pytest.raises(IndexError):
            d.pop_front()
        with pytest.raises(IndexError):
            d.pop_back()

    def test_remove_and_insert_after(self):
        d = DoublyLinkedList()
        n1 = d.push_back(1)
        n3 = d.push_back(3)
        d.insert_after(n1, 2)
        assert list(d) == [1, 2, 3]
        d.remove(n3)
        assert list(d) == [1, 2]
        assert dll_invariant(d) is True

    def test_single_element_edge_cases(self):
        d = DoublyLinkedList()
        node = d.push_back(1)
        assert d.head is d.tail is node
        assert dll_invariant(d) is True
        d.remove(node)
        assert d.head is None and d.tail is None
        assert dll_invariant(d) is True

    def test_corruption_detected(self):
        d = DoublyLinkedList()
        for v in range(6):
            d.push_back(v)
        assert dll_invariant(d) is True
        d.corrupt_back_pointer(3)
        assert dll_invariant(d) is False

    @given(st.lists(st.sampled_from(["pf", "pb", "of", "ob"]), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_matches_deque_model(self, ops):
        from collections import deque

        d = DoublyLinkedList()
        model: deque = deque()
        counter = 0
        for op in ops:
            if op == "pf":
                d.push_front(counter)
                model.appendleft(counter)
                counter += 1
            elif op == "pb":
                d.push_back(counter)
                model.append(counter)
                counter += 1
            elif op == "of" and model:
                assert d.pop_front() == model.popleft()
            elif op == "ob" and model:
                assert d.pop_back() == model.pop()
        assert list(d) == list(model)
        assert dll_invariant(d) is True

    def test_incremental_agrees(self, engine_factory):
        engine = engine_factory(dll_invariant)
        d = DoublyLinkedList()
        rng = random.Random(47)
        engine.run(d)
        for i in range(200):
            roll = rng.random()
            if roll < 0.35 or len(d) == 0:
                d.push_back(i)
            elif roll < 0.6:
                d.push_front(i)
            elif roll < 0.8:
                d.pop_front()
            else:
                d.pop_back()
            assert engine.run(d) == dll_invariant(d) is True

    def test_incremental_detects_corruption(self, engine_factory):
        engine = engine_factory(dll_invariant)
        d = DoublyLinkedList()
        for v in range(30):
            d.push_back(v)
        assert engine.run(d) is True
        d.corrupt_back_pointer(15)
        assert engine.run(d) == dll_invariant(d) is False


class TestSkipListCrossModeParity:
    """Scripted three-way parity for the skip list: ditto == naive ==
    from-scratch after every mutation, across tower rebuilds and
    value-corruption windows."""

    def _engines(self, engine_factory):
        return {
            mode: engine_factory(skip_list_invariant, mode=mode)
            for mode in ("scratch", "ditto", "naive")
        }

    def _assert_agree(self, engines, sl):
        results = {m: e.run(sl) for m, e in engines.items()}
        truth = results["scratch"]
        assert results["ditto"] is truth, results
        assert results["naive"] is truth, results
        return truth

    def test_scripted_insert_delete_sequence(self, engine_factory):
        engines = self._engines(engine_factory)
        sl = SkipList(seed=0xACE1)  # fixed tower heights: reproducible
        assert self._assert_agree(engines, sl) is True
        script = (
            [("insert", k) for k in (5, 1, 9, 3, 7, 2, 8)]
            + [("delete", 3), ("delete", 1), ("insert", 4), ("insert", 0),
               ("delete", 9), ("delete", 42),  # missing key: no-op
               ("insert", 6), ("delete", 5)]
        )
        for op, key in script:
            getattr(sl, op)(key)
            assert self._assert_agree(engines, sl) is True
        assert list(sl) == sorted(set([5, 1, 9, 3, 7, 2, 8, 4, 0, 6])
                                  - {3, 1, 9, 5})

    def test_corruption_window_parity(self, engine_factory):
        engines = self._engines(engine_factory)
        sl = SkipList(seed=0xACE1)
        for k in range(0, 40, 4):
            sl.insert(k)
        assert self._assert_agree(engines, sl) is True
        # Break ordering at a mid key, verify all modes see it, repair.
        sl.corrupt_value(20, 1)
        assert self._assert_agree(engines, sl) is False
        sl.corrupt_value(1, 20)
        assert self._assert_agree(engines, sl) is True

    def test_tower_heights_exercise_all_levels(self, engine_factory):
        """Enough inserts that multi-level towers exist, so the parity
        sweep covers the per-level invariant recursion, then drain."""
        engines = self._engines(engine_factory)
        sl = SkipList(seed=0xACE1)
        for k in range(64):
            sl.insert(k)
            if k % 8 == 0:
                assert self._assert_agree(engines, sl) is True
        assert sl.level > 1  # the point of the test
        assert self._assert_agree(engines, sl) is True
        for k in range(64):
            sl.delete(k)
            if k % 8 == 0:
                assert self._assert_agree(engines, sl) is True
        assert self._assert_agree(engines, sl) is True
