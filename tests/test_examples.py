"""Every example script must run end-to-end and print what it promises."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "first check:   True" in out
        assert "after corrupt: False" in out
        assert "__ditto_rt__" in out  # instrumented source shown

    def test_netcols_game(self):
        out = run_example("netcols_game.py", "40")
        assert "ms/frame" in out
        assert "final board" in out

    def test_jso_obfuscate(self):
        out = run_example("jso_obfuscate.py", "30")
        assert "names renamed" in out
        assert "invariant after the bug: False" in out

    def test_red_black_debugging(self):
        out = run_example("red_black_debugging.py")
        assert "invariant violated immediately after operation" in out

    def test_data_breakpoints(self):
        out = run_example("data_breakpoints.py")
        assert "data breakpoint hit" in out
        assert "sloppy_decrease_key" in out

    def test_iterative_to_recursive(self):
        out = run_example("iterative_to_recursive.py")
        assert "generated entry point" in out
        assert "caught at the faulty method's boundary" in out
        assert "per checked operation" in out

    def test_graph_inspection(self):
        out = run_example("graph_inspection.py")
        assert "rbt_invariant" in out
        assert "(shared)" in out
        assert "Graphviz rendering written" in out

    def test_profiling_trace(self):
        out = run_example("profiling_trace.py", "30")
        assert "where did repair time go" in out
        assert "exec" in out
        assert "re-executed" in out  # the provenance explanation
        assert "ditto_run_duration_seconds_count" in out
        assert "valid" in out  # the Chrome trace validated clean
