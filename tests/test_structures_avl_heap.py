"""AVLTree and BinaryHeap: structure semantics + incremental invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures import (
    AVLTree,
    BinaryHeap,
    avl_invariant,
    check_avl_height,
    check_heap_order,
    heap_invariant,
)


class TestAVLTree:
    def test_insert_contains(self):
        t = AVLTree()
        for k in [5, 2, 8]:
            t.insert(k)
        assert 5 in t and 2 in t and 9 not in t
        assert len(t) == 3

    def test_insert_duplicate_noop(self):
        t = AVLTree()
        t.insert(1)
        t.insert(1)
        assert len(t) == 1

    def test_keys_sorted(self):
        t = AVLTree()
        for k in [9, 3, 7, 1]:
            t.insert(k)
        assert list(t.keys()) == [1, 3, 7, 9]

    def test_delete(self):
        t = AVLTree()
        for k in range(12):
            t.insert(k)
        assert t.delete(6)
        assert not t.delete(6)
        assert list(t.keys()) == [0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11]

    def test_stays_balanced_ascending_inserts(self):
        t = AVLTree()
        for k in range(200):
            t.insert(k)
        assert check_avl_height(t.root) <= 10  # ~1.44 log2(200)
        assert avl_invariant(t) is True

    def test_corrupt_height_detected(self):
        t = AVLTree()
        for k in range(20):
            t.insert(k)
        assert t.corrupt_height(5, 99) is True
        assert avl_invariant(t) is False

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 60)),
                    max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_matches_set_model(self, ops):
        t = AVLTree()
        model: set[int] = set()
        for is_insert, key in ops:
            if is_insert:
                t.insert(key)
                model.add(key)
            else:
                assert t.delete(key) == (key in model)
                model.discard(key)
        assert list(t.keys()) == sorted(model)
        assert avl_invariant(t) is True

    def test_incremental_agrees(self, engine_factory):
        engine = engine_factory(avl_invariant)
        t = AVLTree()
        rng = random.Random(31)
        keys: set[int] = set()
        engine.run(t)
        for _ in range(200):
            if rng.random() < 0.5 or not keys:
                k = rng.randrange(3000)
                t.insert(k)
                keys.add(k)
            else:
                k = rng.choice(sorted(keys))
                t.delete(k)
                keys.discard(k)
            assert engine.run(t) == avl_invariant(t) is True


class TestBinaryHeap:
    def test_push_pop_order(self):
        h = BinaryHeap()
        for v in [5, 1, 4, 2, 3]:
            h.push(v)
        assert [h.pop() for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_peek(self):
        h = BinaryHeap()
        assert h.peek() is None
        h.push(3)
        h.push(1)
        assert h.peek() == 1
        assert len(h) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BinaryHeap().pop()

    def test_growth(self):
        h = BinaryHeap(capacity=2)
        for v in range(40):
            h.push(v)
        assert len(h) == 40
        assert heap_invariant(h) is True

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BinaryHeap(capacity=0)

    def test_corrupt_detected(self):
        h = BinaryHeap()
        for v in range(10):
            h.push(v)
        h.corrupt(0, 10**9)
        assert heap_invariant(h) is False

    def test_corrupt_bounds(self):
        h = BinaryHeap()
        h.push(1)
        with pytest.raises(IndexError):
            h.corrupt(5, 0)

    @given(st.lists(st.one_of(st.integers(0, 100), st.none()), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_matches_sorted_model(self, ops):
        import heapq

        h = BinaryHeap(capacity=2)
        model: list[int] = []
        for op in ops:
            if op is None:
                if model:
                    assert h.pop() == heapq.heappop(model)
            else:
                h.push(op)
                heapq.heappush(model, op)
        assert sorted(h) == sorted(model)
        assert heap_invariant(h) is True

    def test_incremental_agrees(self, engine_factory):
        engine = engine_factory(heap_invariant)
        h = BinaryHeap(capacity=512)
        rng = random.Random(37)
        engine.run(h)
        for _ in range(200):
            if rng.random() < 0.6 or len(h) == 0:
                h.push(rng.randrange(10_000))
            else:
                h.pop()
            assert engine.run(h) == heap_invariant(h) is True

    def test_sift_dirty_set_is_logarithmic(self, engine_factory):
        engine = engine_factory(heap_invariant)
        h = BinaryHeap(capacity=4096)
        for v in range(2000):
            h.push(v)
        engine.run(h)
        graph = engine.graph_size
        h.push(-1)  # sifts to the root: log2(2000) ~ 11 swaps
        report = engine.run_with_report(h)
        assert report.result is True
        assert report.delta["execs"] < 60  # far less than the ~4000 nodes
        assert graph > 1000
