"""Graph introspection helpers (repro.debug)."""

from __future__ import annotations

from repro import TrackedObject, check
from repro.debug import graph_dot, graph_stats, graph_text


class Node(TrackedObject):
    def __init__(self, key, left=None, right=None):
        self.key = key
        self.left = left
        self.right = right


@check
def debug_sum(n):
    if n is None:
        return 0
    a = debug_sum(n.left)
    b = debug_sum(n.right)
    return n.key + a + b


def _tree():
    return Node(1, Node(2, Node(4), None), Node(3))


class TestGraphText:
    def test_empty(self, engine_factory):
        engine = engine_factory(debug_sum)
        assert graph_text(engine) == "<empty graph>"

    def test_tree_rendering(self, engine_factory):
        engine = engine_factory(debug_sum)
        root = _tree()
        assert engine.run(root) == 10
        text = graph_text(engine)
        assert text.splitlines()[0].startswith("debug_sum(")
        assert "= 10" in text
        assert "= 4" in text
        assert text.count("debug_sum") == 4  # None calls are leaf-inlined

    def test_shared_nodes_marked(self, engine_factory):
        @check
        def debug_len(e):
            if e is None:
                return 0
            return 1 + debug_len(e.right)

        engine = engine_factory(debug_sum)
        shared = Node(5)
        root = Node(1, Node(2, shared, None), Node(3, shared, None))
        engine.run(root)
        text = graph_text(engine)
        assert "(shared)" in text

    def test_shared_nodes_keep_flags(self, engine_factory):
        """Regression: the (shared) branch used to drop the computed
        flags, so a shared dirty node printed as clean."""
        engine = engine_factory(debug_sum)
        shared = Node(5)
        root = Node(1, Node(2, shared, None), Node(3, shared, None))
        engine.run(root)
        for node in engine.table:
            if node.explicit_args and node.explicit_args[0] is shared:
                node.dirty = True
        text = graph_text(engine)
        shared_lines = [l for l in text.splitlines() if "(shared)" in l]
        assert shared_lines, "expected a shared reference line"
        assert all("[dirty]" in line for line in shared_lines)
        # The expanded occurrence carries the flag too.
        dirty_lines = [l for l in text.splitlines() if "[dirty]" in l]
        assert len(dirty_lines) == len(shared_lines) + 1
        for node in engine.table:
            node.dirty = False

    def test_truncation(self, engine_factory):
        engine = engine_factory(debug_sum)
        root = None
        for k in range(50):
            root = Node(k, root, None)
        engine.run(root)
        text = graph_text(engine, max_nodes=10)
        assert "truncated" in text


class TestGraphDot:
    def test_dot_structure(self, engine_factory):
        engine = engine_factory(debug_sum)
        engine.run(_tree())
        dot = graph_dot(engine)
        assert dot.startswith("digraph ditto {")
        assert dot.rstrip().endswith("}")
        # 3 edges: calls on None children are leaf-inlined, not nodes.
        assert dot.count("->") == 3
        assert 'label="debug_sum' in dot

    def test_dirty_nodes_colored(self, engine_factory):
        engine = engine_factory(debug_sum)
        root = _tree()
        engine.run(root)
        for node in engine.table:
            node.dirty = True
            break
        assert 'color="red"' in graph_dot(engine)


class TestGraphStats:
    def test_empty(self, engine_factory):
        engine = engine_factory(debug_sum)
        assert graph_stats(engine)["nodes"] == 0

    def test_populated(self, engine_factory):
        engine = engine_factory(debug_sum)
        engine.run(_tree())
        stats = graph_stats(engine)
        assert stats["nodes"] == 4
        assert stats["edges"] == 3  # None calls are leaf-inlined
        assert stats["implicits"] > 0
        assert stats["max_depth"] >= 3
