"""Integration soak: several engines over several structures in one
process, long mixed scenarios with periodic internal validation.

This is the closest test to the paper's deployment story — a program with
many live data structures, each carrying always-on incremental invariant
checks through thousands of operations.
"""

from __future__ import annotations

import random

from repro import DittoEngine, tracking_state
from repro.apps import (
    JsObfuscator,
    NetcolsBot,
    NetcolsGame,
    generate_program,
    jso_invariant,
    netcols_invariant,
)
from repro.structures import (
    AVLTree,
    BTree,
    HashTable,
    OrderedIntList,
    RedBlackTree,
    avl_invariant,
    btree_invariant,
    hash_table_invariant,
    is_ordered,
    rbt_invariant,
)


class TestWholeProgramSoak:
    def test_five_structures_two_apps_interleaved(self, engine_factory):
        rng = random.Random(0xACE)

        lst = OrderedIntList()
        table = HashTable()
        rbt = RedBlackTree()
        avl = AVLTree()
        btree = BTree(t=3)
        game = NetcolsGame(10, 16)
        bot = NetcolsBot(game, seed=5)
        jso = JsObfuscator()
        chunks = iter(generate_program(2000, seed=6))

        engines = {
            "list": engine_factory(is_ordered),
            "hash": engine_factory(hash_table_invariant),
            "rbt": engine_factory(rbt_invariant),
            "avl": engine_factory(avl_invariant),
            "btree": engine_factory(btree_invariant),
            "game": engine_factory(netcols_invariant),
            "jso": engine_factory(jso_invariant),
        }
        values: list[int] = []

        def check_all():
            assert engines["list"].run(lst.head) is True
            assert engines["hash"].run(table) is True
            assert engines["rbt"].run(rbt) is True
            assert engines["avl"].run(avl) is True
            assert engines["btree"].run(btree) is True
            assert engines["game"].run(game) is True
            assert engines["jso"].run(jso) is True

        check_all()
        for step in range(600):
            victim = rng.randrange(7)
            if victim == 0:
                if rng.random() < 0.6 or not values:
                    v = rng.randrange(10_000)
                    lst.insert(v)
                    values.append(v)
                else:
                    lst.delete(values.pop(rng.randrange(len(values))))
            elif victim == 1:
                k = rng.randrange(500)
                if rng.random() < 0.6:
                    table.put(k, k)
                else:
                    table.remove(k)
            elif victim == 2:
                k = rng.randrange(500)
                if rng.random() < 0.6:
                    rbt.insert(k)
                else:
                    rbt.delete(k)
            elif victim == 3:
                k = rng.randrange(500)
                if rng.random() < 0.6:
                    avl.insert(k)
                else:
                    avl.delete(k)
            elif victim == 4:
                k = rng.randrange(500)
                if rng.random() < 0.6:
                    btree.insert(k)
                else:
                    btree.delete(k)
            elif victim == 5:
                bot.step()
            else:
                jso.feed(next(chunks))
            # Only the touched structure's engine runs each step — the
            # others must stay coherent regardless.
            check_all()
            if step % 120 == 0:
                for engine in engines.values():
                    engine.validate()

        for engine in engines.values():
            engine.validate()
        # From-scratch agreement at the end of the soak.
        assert is_ordered(lst.head) is True
        assert hash_table_invariant(table) is True
        assert rbt_invariant(rbt) is True
        assert avl_invariant(avl) is True
        assert btree_invariant(btree) is True
        assert netcols_invariant(game) is True
        assert jso_invariant(jso) is True

    def test_write_log_bounded_through_soak(self, engine_factory):
        engine = engine_factory(is_ordered)
        lst = OrderedIntList()
        rng = random.Random(3)
        engine.run(lst.head)
        for _ in range(800):
            if rng.random() < 0.6 or len(lst) == 0:
                lst.insert(rng.randrange(1000))
            else:
                lst.delete_first()
            engine.run(lst.head)
        # The single consumer keeps up, so the global log stays compacted.
        assert len(tracking_state().write_log) == 0
        engine.validate()

    def test_engine_churn_lifecycle(self):
        """Creating and closing many engines must not leak monitored
        fields, log consumers, or reference counts."""
        lst = OrderedIntList()
        for v in range(30):
            lst.insert(v)
        for _ in range(20):
            engine = DittoEngine(is_ordered)
            assert engine.run(lst.head) is True
            engine.close()
        assert not tracking_state().is_monitored("next")
        assert lst.head._ditto_refcount == 0
        assert len(tracking_state().write_log) == 0
