"""Rope: string-model equivalence and the cached-weight invariants."""

from __future__ import annotations

import random
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures.rope import (
    Rope,
    RopeConcat,
    RopeLeaf,
    check_rope_leaves,
    check_rope_weights,
    rope_invariant,
)

_text = st.text(alphabet=string.ascii_lowercase, max_size=20)


class TestRopeSemantics:
    def test_build_and_str(self):
        r = Rope("hello world " * 10)
        assert str(r) == "hello world " * 10
        assert len(r) == 120

    def test_empty(self):
        r = Rope()
        assert str(r) == ""
        assert len(r) == 0
        assert rope_invariant(r) is True

    def test_indexing(self):
        text = "abcdefghij" * 13
        r = Rope(text)
        for i in (0, 1, 64, 100, len(text) - 1, -1):
            assert r[i] == text[i]
        with pytest.raises(IndexError):
            r[len(text) + 5]

    def test_insert(self):
        r = Rope("helloworld")
        r.insert(5, ", ")
        assert str(r) == "hello, world"
        r.insert(0, ">> ")
        assert str(r) == ">> hello, world"
        r.append("!")
        assert str(r) == ">> hello, world!"
        assert rope_invariant(r) is True

    def test_insert_bounds(self):
        r = Rope("ab")
        with pytest.raises(IndexError):
            r.insert(5, "x")
        r.insert(1, "")  # no-op
        assert str(r) == "ab"

    def test_delete(self):
        r = Rope("hello cruel world")
        r.delete(5, 11)
        assert str(r) == "hello world"
        r.delete(0, 6)
        assert str(r) == "world"
        r.delete(0, 5)
        assert str(r) == ""
        assert rope_invariant(r) is True

    def test_delete_bounds(self):
        r = Rope("abc")
        with pytest.raises(IndexError):
            r.delete(2, 9)
        r.delete(1, 1)  # empty range: no-op
        assert str(r) == "abc"

    @given(st.lists(st.tuples(_text, st.integers(0, 400),
                              st.integers(0, 400)), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_matches_string_model(self, ops):
        r = Rope("seed")
        model = "seed"
        for text, a, b in ops:
            if text:
                index = a % (len(model) + 1)
                r.insert(index, text)
                model = model[:index] + text + model[index:]
            elif model:
                start = a % (len(model) + 1)
                stop = start + (b % (len(model) - start + 1))
                r.delete(start, stop)
                model = model[:start] + model[stop:]
            assert str(r) == model
            assert len(r) == len(model)
            assert rope_invariant(r) is True


class TestRopeInvariants:
    def test_weight_corruption_detected(self):
        r = Rope("x" * 100)
        assert check_rope_weights(r.root) == 100
        assert r.corrupt_weight(+3) is True
        assert check_rope_weights(r.root) == -1
        assert rope_invariant(r) is False
        r.corrupt_weight(-3)
        assert rope_invariant(r) is True

    def test_empty_leaf_detected(self):
        r = Rope("abcd")
        r.root = RopeConcat(RopeLeaf(""), r.root, 0)
        assert check_rope_leaves(r.root) is False
        assert rope_invariant(r) is False

    def test_incremental_agrees_under_edits(self, engine_factory):
        engine = engine_factory(rope_invariant)
        rng = random.Random(81)
        r = Rope("The quick brown fox jumps over the lazy dog. " * 8)
        assert engine.run(r) is True
        for _ in range(120):
            if rng.random() < 0.6:
                index = rng.randrange(len(r) + 1)
                r.insert(index, rng.choice(["foo", "ba", "quux "]))
            elif len(r) > 4:
                start = rng.randrange(len(r) - 2)
                stop = min(len(r), start + rng.randrange(1, 6))
                r.delete(start, stop)
            assert engine.run(r) == rope_invariant(r) is True
        engine.validate()

    def test_incremental_detects_weight_rot(self, engine_factory):
        engine = engine_factory(rope_invariant)
        r = Rope("z" * 200)
        assert engine.run(r) is True
        r.corrupt_weight(+1)
        assert engine.run(r) == rope_invariant(r) is False
        r.corrupt_weight(-1)
        assert engine.run(r) is True

    def test_subtree_sharing_limits_recheck(self, engine_factory):
        engine = engine_factory(rope_invariant)
        r = Rope("a" * 4096)
        engine.run(r)
        graph = engine.graph_size
        r.insert(2048, "MID")  # one spine rebuilt, subtrees shared
        report = engine.run_with_report(r)
        assert report.result is True
        assert report.delta["execs"] < graph * 0.5


class TestRopeCrossModeParity:
    """Scripted three-way parity: after every mutation, the optimistic
    engine, the naive engine, and from-scratch execution agree exactly —
    through clean edits, corruption windows, and repair."""

    def _engines(self, engine_factory):
        return {
            mode: engine_factory(rope_invariant, mode=mode)
            for mode in ("scratch", "ditto", "naive")
        }

    def _assert_agree(self, engines, rope):
        results = {m: e.run(rope) for m, e in engines.items()}
        truth = results["scratch"]
        assert results["ditto"] is truth, results
        assert results["naive"] is truth, results
        return truth

    def test_scripted_edit_sequence(self, engine_factory):
        engines = self._engines(engine_factory)
        r = Rope("the quick brown fox")
        assert self._assert_agree(engines, r) is True
        script = [
            lambda: r.append(" jumps"),
            lambda: r.insert(0, ">> "),
            lambda: r.insert(len(r) // 2, "|mid|"),
            lambda: r.delete(0, 3),
            lambda: r.append(" over the lazy dog"),
            lambda: r.delete(len(r) - 4, len(r)),
            lambda: r.insert(1, ""),  # no-op edit
        ]
        for step in script:
            step()
            assert self._assert_agree(engines, r) is True

    def test_corruption_window_parity(self, engine_factory):
        """All three modes must flip False together while a cached weight
        is rotten, and flip back True together after the repair."""
        engines = self._engines(engine_factory)
        r = Rope("x" * 128)
        r.append("y" * 64)  # guarantee a concat node to corrupt
        assert self._assert_agree(engines, r) is True
        for delta in (1, 3, -2):
            r.corrupt_weight(delta)
            assert self._assert_agree(engines, r) is False
            r.corrupt_weight(-delta)
            assert self._assert_agree(engines, r) is True

    def test_interleaved_edits_and_corruption(self, engine_factory):
        engines = self._engines(engine_factory)
        r = Rope("seed text ")
        expected_text = "seed text "
        for i in range(20):
            r.append(f"chunk{i} ")
            expected_text += f"chunk{i} "
            assert self._assert_agree(engines, r) is True
            if i % 5 == 4:
                r.corrupt_weight(+1)
                assert self._assert_agree(engines, r) is False
                r.corrupt_weight(-1)
                assert self._assert_agree(engines, r) is True
        # Parity held *and* the rope still models the right string.
        assert str(r) == expected_text
