"""Heap-location identity, hashing, and reads."""

from __future__ import annotations

from repro import TrackedArray, TrackedObject
from repro.core.locations import (
    FieldLocation,
    IndexLocation,
    LengthLocation,
)


class Node(TrackedObject):
    def __init__(self, value):
        self.value = value


class TestFieldLocation:
    def test_same_object_same_field(self):
        n = Node(1)
        assert FieldLocation(n, "value") == FieldLocation(n, "value")
        assert hash(FieldLocation(n, "value")) == hash(
            FieldLocation(n, "value")
        )

    def test_different_fields(self):
        n = Node(1)
        assert FieldLocation(n, "value") != FieldLocation(n, "next")

    def test_different_objects(self):
        assert FieldLocation(Node(1), "value") != FieldLocation(
            Node(1), "value"
        )

    def test_read(self):
        n = Node(42)
        assert FieldLocation(n, "value").read() == 42
        n.value = 43
        assert FieldLocation(n, "value").read() == 43

    def test_usable_in_sets(self):
        n = Node(1)
        locations = {FieldLocation(n, "value"), FieldLocation(n, "value")}
        assert len(locations) == 1

    def test_repr_mentions_field(self):
        n = Node(1)
        assert "value" in repr(FieldLocation(n, "value"))


class TestIndexLocation:
    def test_identity(self):
        a = TrackedArray(4)
        assert IndexLocation(a, 2) == IndexLocation(a, 2)
        assert IndexLocation(a, 2) != IndexLocation(a, 3)
        assert IndexLocation(a, 2) != IndexLocation(TrackedArray(4), 2)

    def test_read(self):
        a = TrackedArray([10, 20, 30])
        assert IndexLocation(a, 1).read() == 20

    def test_not_equal_to_field_location(self):
        a = TrackedArray(2)
        n = Node(1)
        assert IndexLocation(a, 0) != FieldLocation(n, "value")


class TestLengthLocation:
    def test_identity(self):
        a = TrackedArray(4)
        assert LengthLocation(a) == LengthLocation(a)
        assert LengthLocation(a) != LengthLocation(TrackedArray(4))

    def test_read(self):
        assert LengthLocation(TrackedArray(7)).read() == 7

    def test_distinct_from_index(self):
        a = TrackedArray(4)
        assert LengthLocation(a) != IndexLocation(a, 0)
