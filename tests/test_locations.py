"""Heap-location identity, hashing, and reads."""

from __future__ import annotations

import pytest

from repro import TrackedArray, TrackedObject
from repro.core.locations import (
    FieldLocation,
    IndexLocation,
    LengthLocation,
    RangeLocation,
)


class Node(TrackedObject):
    def __init__(self, value):
        self.value = value


class TestFieldLocation:
    def test_same_object_same_field(self):
        n = Node(1)
        assert FieldLocation(n, "value") == FieldLocation(n, "value")
        assert hash(FieldLocation(n, "value")) == hash(
            FieldLocation(n, "value")
        )

    def test_different_fields(self):
        n = Node(1)
        assert FieldLocation(n, "value") != FieldLocation(n, "next")

    def test_different_objects(self):
        assert FieldLocation(Node(1), "value") != FieldLocation(
            Node(1), "value"
        )

    def test_read(self):
        n = Node(42)
        assert FieldLocation(n, "value").read() == 42
        n.value = 43
        assert FieldLocation(n, "value").read() == 43

    def test_usable_in_sets(self):
        n = Node(1)
        locations = {FieldLocation(n, "value"), FieldLocation(n, "value")}
        assert len(locations) == 1

    def test_repr_mentions_field(self):
        n = Node(1)
        assert "value" in repr(FieldLocation(n, "value"))


class TestIndexLocation:
    def test_identity(self):
        a = TrackedArray(4)
        assert IndexLocation(a, 2) == IndexLocation(a, 2)
        assert IndexLocation(a, 2) != IndexLocation(a, 3)
        assert IndexLocation(a, 2) != IndexLocation(TrackedArray(4), 2)

    def test_read(self):
        a = TrackedArray([10, 20, 30])
        assert IndexLocation(a, 1).read() == 20

    def test_not_equal_to_field_location(self):
        a = TrackedArray(2)
        n = Node(1)
        assert IndexLocation(a, 0) != FieldLocation(n, "value")


class TestLengthLocation:
    def test_identity(self):
        a = TrackedArray(4)
        assert LengthLocation(a) == LengthLocation(a)
        assert LengthLocation(a) != LengthLocation(TrackedArray(4))

    def test_read(self):
        assert LengthLocation(TrackedArray(7)).read() == 7

    def test_distinct_from_index(self):
        a = TrackedArray(4)
        assert LengthLocation(a) != IndexLocation(a, 0)


class TestRangeLocation:
    def test_identity(self):
        a = TrackedArray(8)
        assert RangeLocation(a, 1, 5) == RangeLocation(a, 1, 5)
        assert hash(RangeLocation(a, 1, 5)) == hash(RangeLocation(a, 1, 5))
        assert RangeLocation(a, 1, 5) != RangeLocation(a, 1, 6)
        assert RangeLocation(a, 1, 5) != RangeLocation(a, 2, 5)
        assert RangeLocation(a, 1, 5) != RangeLocation(TrackedArray(8), 1, 5)

    def test_distinct_from_point_locations(self):
        a = TrackedArray(4)
        assert RangeLocation(a, 0, 1) != IndexLocation(a, 0)
        assert RangeLocation(a, 0, 1) != LengthLocation(a)

    def test_covers_half_open(self):
        a = TrackedArray(8)
        r = RangeLocation(a, 2, 5)
        assert len(r) == 3
        assert not r.covers(1)
        assert r.covers(2)
        assert r.covers(4)
        assert not r.covers(5)

    def test_empty_range_covers_nothing(self):
        a = TrackedArray(4)
        r = RangeLocation(a, 3, 3)
        assert len(r) == 0
        assert not r.covers(3)

    def test_invalid_bounds_rejected(self):
        a = TrackedArray(4)
        with pytest.raises(ValueError):
            RangeLocation(a, -1, 2)
        with pytest.raises(ValueError):
            RangeLocation(a, 3, 1)

    def test_read_returns_covered_values(self):
        a = TrackedArray([10, 20, 30, 40])
        assert RangeLocation(a, 1, 3).read() == (20, 30)
        # Reads clamp to the current occupancy (diagnostics only).
        assert RangeLocation(a, 2, 9).read() == (30, 40)

    def test_usable_in_sets(self):
        a = TrackedArray(4)
        assert len({RangeLocation(a, 0, 2), RangeLocation(a, 0, 2)}) == 1
