"""Shared test fixtures.

Every test runs against a clean global tracking state (write log, monitored
fields); engines created inside tests are closed automatically via the
``engine_factory`` fixture.
"""

from __future__ import annotations

import sys

import pytest

from repro import DittoEngine, reset_tracking
from repro.obs import RingBufferSink

# Recursive checks on sizeable structures need stack headroom.
sys.setrecursionlimit(200_000)


def pytest_addoption(parser):
    parser.addoption(
        "--engine-mode",
        default="ditto",
        choices=("ditto", "naive"),
        help=(
            "Incrementalization strategy used by mode-parametric suites "
            "(the tests/test_resilience_*.py fault-injection tests); CI "
            "runs them under both 'ditto' and 'naive'."
        ),
    )
    parser.addoption(
        "--trace-sink",
        default="null",
        choices=("null", "ring"),
        help=(
            "Trace sink attached to every engine_factory engine: 'null' "
            "(default, tracing off) or 'ring' (RingBufferSink — CI runs "
            "the suite under both, proving tracing changes no results)."
        ),
    )


@pytest.fixture
def engine_mode(request) -> str:
    """The --engine-mode command-line choice ('ditto' by default)."""
    return request.config.getoption("--engine-mode")


@pytest.fixture(autouse=True)
def _clean_tracking():
    reset_tracking()
    yield
    reset_tracking()


@pytest.fixture
def engine_factory(request):
    """Create engines that are closed at test teardown."""
    engines: list[DittoEngine] = []
    sink_kind = request.config.getoption("--trace-sink")

    def make(entry, **kwargs) -> DittoEngine:
        # The test session already runs with a raised recursion limit, and
        # engine-managed limits interact poorly with hypothesis's stack
        # bookkeeping — disable unless a test opts in.
        kwargs.setdefault("recursion_limit", None)
        if sink_kind == "ring" and "trace_sink" not in kwargs:
            kwargs["trace_sink"] = RingBufferSink()
        engine = DittoEngine(entry, **kwargs)
        engines.append(engine)
        return engine

    yield make
    for engine in engines:
        engine.close()
