"""Shared test fixtures.

Every test runs against a clean global tracking state (write log, monitored
fields); engines created inside tests are closed automatically via the
``engine_factory`` fixture.
"""

from __future__ import annotations

import sys

import pytest

from repro import DittoEngine, reset_tracking

# Recursive checks on sizeable structures need stack headroom.
sys.setrecursionlimit(200_000)


def pytest_addoption(parser):
    parser.addoption(
        "--engine-mode",
        default="ditto",
        choices=("ditto", "naive"),
        help=(
            "Incrementalization strategy used by mode-parametric suites "
            "(the tests/test_resilience_*.py fault-injection tests); CI "
            "runs them under both 'ditto' and 'naive'."
        ),
    )


@pytest.fixture
def engine_mode(request) -> str:
    """The --engine-mode command-line choice ('ditto' by default)."""
    return request.config.getoption("--engine-mode")


@pytest.fixture(autouse=True)
def _clean_tracking():
    reset_tracking()
    yield
    reset_tracking()


@pytest.fixture
def engine_factory():
    """Create engines that are closed at test teardown."""
    engines: list[DittoEngine] = []

    def make(entry, **kwargs) -> DittoEngine:
        # The test session already runs with a raised recursion limit, and
        # engine-managed limits interact poorly with hypothesis's stack
        # bookkeeping — disable unless a test opts in.
        kwargs.setdefault("recursion_limit", None)
        engine = DittoEngine(entry, **kwargs)
        engines.append(engine)
        return engine

    yield make
    for engine in engines:
        engine.close()
