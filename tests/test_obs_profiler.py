"""Repair-cost attribution profiler: mutation-site attribution, sampling
epochs, determinism, exports, and the armed-but-idle overhead contract.

The overhead promise is proved the same way the tracing one is
(tests/test_obs_overhead.py): deterministically.  An attached profiler
whose sampling epoch is not armed leaves the tracking state's
``log_append`` as the *raw bound* ``WriteLog.append`` — identical object,
identical code path — so ``mutations_captured`` must stay exactly zero
through a soak.  A generous min-of-N timing bound rides along as a
tripwire, loose enough not to flake in CI.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import DittoEngine
from repro.obs import RepairProfiler, disable_profiling, enable_profiling
from repro.obs.trace import RingBufferSink
from repro.structures import OrderedIntList, is_ordered

SOAK_SIZE = 1000
SOAK_MODS = 120


def _build_list(size: int) -> OrderedIntList:
    lst = OrderedIntList()
    for v in range(size):
        lst.insert(v)
    return lst


# Two distinct mutation call-sites: attribution must tell them apart.
def _mutate_low(lst: OrderedIntList, rng: random.Random) -> None:
    lst.insert(rng.randrange(100))


def _mutate_high(lst: OrderedIntList, rng: random.Random) -> None:
    lst.insert(900 + rng.randrange(100))


def _soak(engine: DittoEngine, lst: OrderedIntList, seed: int) -> dict:
    rng = random.Random(seed)
    engine.run(lst.head)
    before = engine.stats.snapshot()
    values = list(range(SOAK_SIZE))
    for _ in range(SOAK_MODS):
        if rng.random() < 0.6 or not values:
            v = rng.randrange(10 * SOAK_SIZE)
            lst.insert(v)
            values.append(v)
        else:
            lst.delete(values.pop(rng.randrange(len(values))))
        assert engine.run(lst.head) is True
    return engine.stats.delta(before)


class TestSiteAttribution:
    def test_two_sites_attributed_separately(self, engine_factory):
        profiler = RepairProfiler()
        engine = engine_factory(is_ordered, profiler=profiler)
        lst = _build_list(50)
        rng = random.Random(7)
        engine.run(lst.head)
        for _ in range(6):
            _mutate_low(lst, rng)
            engine.run(lst.head)
        for _ in range(3):
            _mutate_high(lst, rng)
            engine.run(lst.head)
        sites = {s.site: s for s in profiler.top_mutation_sites()}
        low = next(s for t, s in sites.items() if "_mutate_low" in t)
        high = next(s for t, s in sites.items() if "_mutate_high" in t)
        assert low.mutations == 6
        assert high.mutations == 3
        # Every tagged mutation dirtied at least one reader and induced
        # at least one re-execution.
        assert low.nodes_dirtied >= 6
        assert low.induced_execs >= 6
        assert high.induced_execs >= 3
        assert low.induced_time >= 0.0

    def test_site_tag_is_caller_not_structure_mutator(self, engine_factory):
        profiler = RepairProfiler()
        engine = engine_factory(is_ordered, profiler=profiler)
        lst = _build_list(20)
        engine.run(lst.head)
        _mutate_low(lst, random.Random(0))
        engine.run(lst.head)
        (site,) = [s.site for s in profiler.top_mutation_sites()]
        # The application frame, not OrderedIntList.insert.
        assert "_mutate_low" in site
        assert "ordered_list.py" not in site
        assert site.endswith(")") and ":" in site  # "func (file:line)"

    def test_check_and_node_class_stats(self, engine_factory):
        profiler = RepairProfiler()
        engine = engine_factory(is_ordered, profiler=profiler)
        lst = _build_list(30)
        engine.run(lst.head)
        lst.insert(15)
        engine.run(lst.head)
        (cs,) = profiler.check_stats()
        assert cs.check == "is_ordered"
        assert cs.runs == 2
        assert cs.incremental_runs == 1
        assert cs.aborted_runs == 0
        assert cs.execs > 0
        assert cs.total_time > 0
        klasses = profiler.node_class_stats()
        assert any(k.func == "is_ordered" and k.execs > 0 for k in klasses)

    def test_report_mentions_all_axes(self, engine_factory):
        profiler = RepairProfiler()
        engine = engine_factory(is_ordered, profiler=profiler)
        lst = _build_list(10)
        engine.run(lst.head)
        _mutate_low(lst, random.Random(1))
        engine.run(lst.head)
        report = profiler.report()
        assert "per check:" in report
        assert "per node class" in report
        assert "top mutation sites" in report
        assert "_mutate_low" in report


class TestDeterminism:
    def _profile_soak(self, seed: int) -> list[tuple]:
        """One seeded bench-style soak; returns the top-3 site ranking
        reduced to its deterministic fields."""
        from repro.bench.runner import measure_soak

        profiler = RepairProfiler()
        measure_soak(
            "ordered_list", 120, 60, mode="ditto", seed=seed,
            engine_options={"profiler": profiler,
                            "recursion_limit": None},
        )
        profiler.detach_all()
        return [
            (s.site, s.mutations, s.nodes_dirtied, s.induced_execs)
            for s in profiler.top_mutation_sites(3)
        ]

    def test_top3_stable_under_fixed_seed(self):
        first = self._profile_soak(seed=0xD1770)
        second = self._profile_soak(seed=0xD1770)
        assert first == second
        assert first  # the soak produced attributable mutations
        # The ranking key is pure counts, so equal runs rank identically;
        # a different seed is allowed to (and here does) shuffle counts.
        assert all("workloads.py" in site for site, *_ in first)


class TestSamplingEpochs:
    def test_interval_samples_every_kth_run(self, engine_factory):
        profiler = RepairProfiler(sample_interval=3)
        engine = engine_factory(is_ordered, profiler=profiler)
        lst = _build_list(20)
        rng = random.Random(5)
        for _ in range(9):
            _mutate_low(lst, rng)
            engine.run(lst.head)
        assert profiler.runs_seen == 9
        assert profiler.samples == 3  # runs 3, 6, 9
        # Only the armed epochs captured mutations.
        assert 0 < profiler.mutations_captured < 9

    def test_unarmed_epoch_leaves_raw_append(self, engine_factory):
        profiler = RepairProfiler(sample_interval=1000)
        engine = engine_factory(is_ordered, profiler=profiler)
        state = engine.tracking
        assert state.mutation_probe is None
        assert state.log_append == state.write_log.append
        lst = _build_list(20)
        engine.run(lst.head)
        lst.insert(10)
        engine.run(lst.head)
        assert profiler.mutations_captured == 0
        assert profiler.samples == 0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            RepairProfiler(sample_interval=0)

    def test_reset_clears_attribution_but_not_attachment(
        self, engine_factory
    ):
        profiler = RepairProfiler()
        engine = engine_factory(is_ordered, profiler=profiler)
        lst = _build_list(10)
        engine.run(lst.head)
        _mutate_low(lst, random.Random(2))
        engine.run(lst.head)
        assert profiler.top_mutation_sites()
        profiler.reset()
        assert profiler.top_mutation_sites() == []
        assert profiler.runs_seen == 0
        assert engine.profiler is profiler
        lst.insert(3)
        engine.run(lst.head)
        assert profiler.samples == 1


class TestAttachDetach:
    def test_detach_restores_raw_barrier_path(self, engine_factory):
        engine = engine_factory(is_ordered)
        profiler = enable_profiling(engine)
        state = engine.tracking
        assert engine.profiler is profiler
        assert state.mutation_probe is not None
        disable_profiling(engine)
        assert engine.profiler is None
        assert state.mutation_probe is None
        assert state.log_append == state.write_log.append

    def test_enable_is_idempotent(self, engine_factory):
        engine = engine_factory(is_ordered)
        profiler = enable_profiling(engine)
        assert enable_profiling(engine) is profiler

    def test_second_profiler_rejected(self, engine_factory):
        engine = engine_factory(is_ordered)
        enable_profiling(engine)
        with pytest.raises(ValueError, match="already has a profiler"):
            RepairProfiler().attach(engine)

    def test_shared_state_refcounted(self, engine_factory):
        profiler = RepairProfiler()
        a = engine_factory(is_ordered, profiler=profiler)
        b = engine_factory(is_ordered, profiler=profiler)
        assert a.tracking is b.tracking  # global state by default
        profiler.detach(a)
        # One engine still attached: the probe must survive.
        assert b.tracking.mutation_probe is not None
        profiler.detach(b)
        assert b.tracking.mutation_probe is None


class TestExports:
    def _profiled_engine(self, engine_factory):
        profiler = RepairProfiler()
        engine = engine_factory(is_ordered, profiler=profiler)
        lst = _build_list(30)
        engine.run(lst.head)
        rng = random.Random(3)
        for _ in range(4):
            _mutate_low(lst, rng)
            engine.run(lst.head)
        return profiler

    def test_folded_format(self, engine_factory, tmp_path):
        profiler = self._profiled_engine(engine_factory)
        folded = profiler.folded()
        assert folded.endswith("\n")
        for line in folded.strip().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert len(stack.split(";")) == 3  # check;phase;func
            assert int(weight) >= 1
        assert any(line.startswith("is_ordered;") for line in
                   folded.splitlines())
        path = tmp_path / "profile.folded.txt"
        profiler.write_folded(str(path))
        assert path.read_text() == folded

    def test_speedscope_document(self, engine_factory, tmp_path):
        import json

        profiler = self._profiled_engine(engine_factory)
        doc = profiler.speedscope()
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "microseconds"
        assert len(profile["samples"]) == len(profile["weights"])
        nframes = len(doc["shared"]["frames"])
        for sample in profile["samples"]:
            assert len(sample) == 3
            assert all(0 <= idx < nframes for idx in sample)
        assert profile["endValue"] == sum(profile["weights"])
        path = tmp_path / "profile.speedscope.json"
        profiler.write_speedscope(str(path))
        assert json.loads(path.read_text()) == doc

    def test_heat_dot_escaped_and_edged(self, engine_factory):
        profiler = self._profiled_engine(engine_factory)
        dot = profiler.heat_dot()
        assert dot.startswith("digraph repair_heat {")
        assert dot.rstrip().endswith("}")
        assert "is_ordered" in dot
        assert "fillcolor=" in dot
        # Self-recursive check: the call edge shows up with a count.
        assert "->" in dot

    def test_to_json_round_trips_through_analyzer(self, engine_factory):
        from repro.obs.analyze import summarize_profile

        profiler = self._profiled_engine(engine_factory)
        doc = profiler.to_json()
        assert doc["kind"] == "repair_profile"
        text = summarize_profile(doc)
        assert "_mutate_low" in text
        assert "is_ordered" in text


class TestProfileSampleInstant:
    def test_emitted_when_tracing(self, engine_factory):
        sink = RingBufferSink()
        profiler = RepairProfiler()
        engine = engine_factory(
            is_ordered, profiler=profiler, trace_sink=sink
        )
        lst = _build_list(10)
        engine.run(lst.head)
        lst.insert(5)
        engine.run(lst.head)
        instants = sink.instants("profile_sample")
        assert len(instants) == 2
        assert instants[-1].args["check"] == "is_ordered"
        assert instants[-1].args["incremental"] is True


class TestArmedIdleOverhead:
    """Satellite: an attached-but-idle profiler must cost the barrier
    soak only a small fixed percentage over the NullSink baseline."""

    def test_idle_profiler_changes_no_behaviour(self):
        baseline = DittoEngine(is_ordered, recursion_limit=None)
        try:
            base_delta = _soak(baseline, _build_list(SOAK_SIZE), 0xBEEF)
        finally:
            baseline.close()

        profiler = RepairProfiler(sample_interval=10_000)
        profiled = DittoEngine(
            is_ordered, recursion_limit=None, profiler=profiler
        )
        try:
            state = profiled.tracking
            assert state.mutation_probe is None
            prof_delta = _soak(profiled, _build_list(SOAK_SIZE), 0xBEEF)
            # Identical work accounting, zero captures: the barrier path
            # is the raw append while the epoch is unarmed.
            assert prof_delta == base_delta
            assert profiler.mutations_captured == 0
            assert profiler.samples == 0
            assert profiler.runs_seen == SOAK_MODS + 1
        finally:
            profiler.detach_all()
            profiled.close()

    def test_idle_timing_within_bound(self):
        """Min-of-N wall-clock tripwire.  The deterministic test above is
        the real contract; the bound here is generous (35%) because CI
        timing noise on a ~10ms soak dwarfs a truly zero-cost change."""

        def timed_soak(profiler) -> float:
            best = float("inf")
            for _ in range(3):
                engine = DittoEngine(
                    is_ordered, recursion_limit=None, profiler=profiler
                )
                try:
                    lst = _build_list(SOAK_SIZE)
                    start = time.perf_counter()
                    _soak(engine, lst, 0xF00D)
                    best = min(best, time.perf_counter() - start)
                finally:
                    if profiler is not None:
                        profiler.detach(engine)
                    engine.close()
            return best

        base = timed_soak(None)
        idle = timed_soak(RepairProfiler(sample_interval=10_000))
        assert idle <= base * 1.35 + 0.01
