"""@check registry: wrapping, direct calls, callee resolution, closures."""

from __future__ import annotations

import pytest

from repro import CheckFunction, InstrumentationError, check
from repro.instrument.registry import closure_of


@check
def leafy(x):
    return x is None


@check
def caller(x):
    b1 = leafy(x)
    b2 = mutual_a(x)
    return b1 and b2


@check
def mutual_a(x):
    if x is None:
        return True
    return mutual_b(x)


@check
def mutual_b(x):
    if x is None:
        return True
    return mutual_a(None)


class TestCheckDecorator:
    def test_wraps_into_check_function(self):
        assert isinstance(leafy, CheckFunction)
        assert leafy.name == "leafy"
        assert leafy.params == ["x"]

    def test_direct_call_runs_original(self):
        assert leafy(None) is True
        assert leafy(3) is False

    def test_idempotent(self):
        assert check(leafy) is leafy

    def test_rejects_non_functions(self):
        with pytest.raises(InstrumentationError):
            check(42)  # type: ignore[arg-type]

    def test_unique_uids(self):
        assert leafy.uid != caller.uid != mutual_a.uid

    def test_tree_strips_decorators(self):
        tree = leafy.tree()
        assert tree.decorator_list == []
        assert tree.name == "leafy"

    def test_repr(self):
        assert "leafy" in repr(leafy)


class TestCalleeResolution:
    def test_resolve_callees(self):
        callees = caller.resolve_callees()
        assert callees == {"leafy": leafy, "mutual_a": mutual_a}

    def test_self_recursion_resolves(self):
        @check
        def recurse(x):
            if x is None:
                return True
            return recurse(None)

        assert recurse.resolve_callees() == {"recurse": recurse}

    def test_closure_of_transitive(self):
        closure = closure_of(caller)
        assert set(closure.values()) == {caller, leafy, mutual_a, mutual_b}

    def test_closure_of_leaf(self):
        assert set(closure_of(leafy).values()) == {leafy}

    def test_mutual_recursion_closure(self):
        closure = closure_of(mutual_a)
        assert set(closure.values()) == {mutual_a, mutual_b}
