"""The ``python -m repro.lint`` command line: exit codes, output formats,
``--output``/``--strict-warnings``/``--rules``, and usage errors."""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.lint.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def test_clean_file_exits_zero(capsys):
    assert main([fixture("clean.py")]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_violating_tree_exits_one_and_names_rule(capsys):
    assert main([FIXTURES]) == 1
    out = capsys.readouterr().out
    assert "DIT101" in out and "bypass_setattr.py" in out
    # Diagnostics carry file:line positions.
    assert "bypass_setattr.py:27" in out


def test_warning_only_file_exits_zero_unless_strict(capsys):
    path = fixture("dynamic_setattr.py")
    assert main([path]) == 0
    capsys.readouterr()
    assert main([path, "--strict-warnings"]) == 1


def test_json_format(capsys):
    assert main([FIXTURES, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["errors"] > 0
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "DIT001" in codes and "DIT104" in codes


def test_output_file_written(tmp_path, capsys):
    out_path = tmp_path / "lint.json"
    main([FIXTURES, "--format", "json", "--output", str(out_path)])
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert payload["files_linted"] > 0


def test_rules_listing(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    assert "DIT001" in out and "DIT105" in out


def test_no_paths_is_usage_error(capsys):
    assert main([]) == 2
    assert "no paths given" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main([fixture("does_not_exist.py")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_module_entry_point_runs():
    """``python -m repro.lint`` is wired up end to end."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", fixture("clean.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "0 error(s)" in proc.stdout


def test_injected_bypass_in_structure_copy(tmp_path):
    """The acceptance-criterion drill: copy a shipped structure, inject a
    barrier bypass, and the linter must fail naming rule, file, line."""
    src = os.path.join(REPO_ROOT, "src", "repro", "structures",
                       "ordered_list.py")
    with open(src, encoding="utf-8") as fh:
        lines = fh.read().splitlines(keepends=True)
    # Append a bypassing mutator at module level.
    lines.append(
        "\n\ndef evil_bypass(e, value):\n"
        "    object.__setattr__(e, \"value\", value)\n"
    )
    target = tmp_path / "ordered_list_bypassed.py"
    target.write_text("".join(lines))
    from repro.lint.modlint import lint_paths

    report = lint_paths([str(target)])
    assert report.exit_code() == 1
    [diag] = [d for d in report.diagnostics if d.code == "DIT101"]
    assert diag.severity == "error"
    assert diag.file == str(target)
    assert diag.line == len(lines) + 3  # the injected setattr line


# --explain. -------------------------------------------------------------------


def test_explain_known_rule(capsys):
    assert main(["--explain", "DIT203"]) == 0
    out = capsys.readouterr().out
    assert "DIT203" in out and "fold-opaque-call" in out
    assert "Example:" in out


def test_explain_is_case_insensitive(capsys):
    assert main(["--explain", "dit101"]) == 0
    assert "setattr-bypass" in capsys.readouterr().out


def test_explain_unknown_rule_is_usage_error(capsys):
    assert main(["--explain", "DIT999"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule code" in err and "DIT999" in err


def test_explain_covers_full_catalogue(capsys):
    """Every shipped rule explains itself: id, summary, rationale, and an
    example — none of the entries is a stub."""
    from repro.lint import RULES

    for code, rule in sorted(RULES.items()):
        assert main(["--explain", code]) == 0
        out = capsys.readouterr().out
        assert code in out
        assert rule.name in out
        assert "Example:" in out


def test_explain_needs_no_paths(capsys):
    """--explain is standalone: no paths required, unlike a lint run."""
    assert main(["--explain", "DIT201"]) == 0
    capsys.readouterr()
    assert main([]) == 2  # whereas a pathless lint run is a usage error
