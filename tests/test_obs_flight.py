"""Black-box flight recorder: triggers, rate limits, bounded memory, and
the serving-pool integration that gives every tenant one.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import DittoEngine
from repro.obs import FlightRecorder, NullSink, RingBufferSink
from repro.obs.trace import TeeSink
from repro.structures import OrderedIntList, is_ordered


def _build_list(size: int) -> OrderedIntList:
    lst = OrderedIntList()
    for v in range(size):
        lst.insert(v)
    return lst


@pytest.fixture
def recorder_engine(engine_factory, tmp_path):
    engine = engine_factory(is_ordered, trace_sink=NullSink())
    recorder = FlightRecorder(str(tmp_path), name="t0").attach(engine)
    return recorder, engine, tmp_path


class TestAttachment:
    def test_null_sink_replaced_by_ring(self, recorder_engine):
        recorder, engine, _ = recorder_engine
        assert isinstance(engine.trace_sink, RingBufferSink)
        assert engine.tracing is True

    def test_existing_sink_preserved_via_tee(self, engine_factory,
                                             tmp_path):
        user_sink = RingBufferSink()
        engine = engine_factory(is_ordered, trace_sink=user_sink)
        recorder = FlightRecorder(str(tmp_path)).attach(engine)
        tee = engine.trace_sink
        assert isinstance(tee, TeeSink)
        assert user_sink in tee.sinks
        lst = _build_list(5)
        engine.run(lst.head)
        # Both the user's sink and the black-box ring saw the run.
        assert user_sink.events_emitted > 0
        assert recorder.trace_events()
        recorder.detach()
        assert engine.trace_sink is user_sink

    def test_double_attach_rejected(self, recorder_engine,
                                    engine_factory, tmp_path):
        recorder, _, _ = recorder_engine
        other = engine_factory(is_ordered)
        with pytest.raises(ValueError, match="already attached"):
            recorder.attach(other)

    def test_observe_requires_attachment(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        with pytest.raises(ValueError, match="not attached"):
            recorder.observe()

    def test_rejects_bad_limits(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path), capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path), max_dumps=0)


class TestTriggers:
    def test_counter_delta_triggers_dump(self, recorder_engine):
        recorder, engine, tmp_path = recorder_engine
        lst = _build_list(10)
        engine.run(lst.head)
        assert recorder.observe() is None  # healthy run: no dump
        # Simulate the engine falling back to scratch.
        engine.stats.scratch_fallbacks += 1
        path = recorder.observe()
        assert path is not None and os.path.exists(path)
        assert "scratch_fallback" in os.path.basename(path)
        # The delta was consumed: the next observation is quiet again.
        assert recorder.observe() is None

    def test_explicit_trigger_reasons(self, recorder_engine):
        recorder, engine, _ = recorder_engine
        lst = _build_list(5)
        engine.run(lst.head)
        path = recorder.trigger("breaker_trip", detail="status=error")
        assert path is not None
        doc = json.load(open(path))
        assert doc["reason"] == "breaker_trip"
        assert doc["detail"] == "status=error"
        with pytest.raises(ValueError, match="unknown trigger reason"):
            recorder.trigger("disk_full")

    def test_dump_is_self_contained(self, recorder_engine):
        recorder, engine, _ = recorder_engine
        lst = _build_list(10)
        engine.run(lst.head)
        recorder.observe()
        lst.insert(4)
        engine.run(lst.head)
        recorder.observe()
        path = recorder.trigger("manual")
        doc = json.load(open(path))
        assert doc["kind"] == "flight_dump"
        assert doc["schema"] == 1
        assert doc["check"] == "is_ordered"
        assert doc["name"] == "t0"
        assert doc["stats"]["runs"] == 2
        assert len(doc["runs"]) == 2
        assert doc["runs"][-1]["duration_s"] >= 0
        assert doc["runs"][-1]["delta"]  # incremental run moved counters
        assert doc["trace"]  # the ring captured span events
        assert "timers_s" in doc and "fallback_events" in doc

    def test_dump_emits_flight_dump_instant(self, recorder_engine):
        recorder, engine, _ = recorder_engine
        lst = _build_list(5)
        engine.run(lst.head)
        recorder.trigger("manual")
        ring_events = [e for e in recorder.trace_events()
                       if e.name == "flight_dump"]
        assert len(ring_events) == 1
        assert ring_events[0].args["reason"] == "manual"


class TestRateLimits:
    def test_max_dumps_cap(self, recorder_engine):
        recorder, engine, _ = recorder_engine
        recorder.max_dumps = 2
        lst = _build_list(5)
        engine.run(lst.head)
        assert recorder.trigger("manual") is not None
        assert recorder.trigger("manual") is not None
        assert recorder.trigger("manual") is None
        assert len(recorder.dumps) == 2
        assert recorder.dumps_suppressed == 1

    def test_min_dump_interval(self, engine_factory, tmp_path):
        fake_now = [0.0]
        recorder = FlightRecorder(
            str(tmp_path), min_dump_interval=5.0,
            clock=lambda: fake_now[0],
        )
        engine = engine_factory(is_ordered)
        recorder.attach(engine)
        engine.run(_build_list(5).head)
        assert recorder.trigger("manual") is not None
        fake_now[0] = 2.0  # inside the window
        assert recorder.trigger("manual") is None
        assert recorder.dumps_suppressed == 1
        fake_now[0] = 6.0  # past it
        assert recorder.trigger("manual") is not None


class TestBoundedMemory:
    def test_rings_constant_over_10k_runs(self, engine_factory, tmp_path):
        """Satellite: the black box must be constant-memory no matter how
        long the engine lives."""
        recorder = FlightRecorder(
            str(tmp_path), capacity=32, trace_capacity=128,
        )
        engine = engine_factory(is_ordered, trace_sink=NullSink())
        recorder.attach(engine)
        lst = _build_list(50)
        engine.run(lst.head)
        for i in range(10_000):
            if i % 100 == 0:  # real incremental runs, sparsely
                lst.insert(i)
                engine.run(lst.head)
            recorder.observe()
        assert len(recorder) == 32
        assert len(recorder.runs()) == 32
        assert len(recorder.trace_events()) <= 128
        assert recorder.dumps == []  # healthy soak: not one artifact
        # The ring holds the *latest* summaries.
        assert recorder.runs()[-1]["run_index"] == engine.stats.runs


class TestPoolIntegration:
    def test_deadline_abort_produces_artifact(self, tmp_path):
        from repro.qa.models import get_model
        from repro.serving.pool import EnginePool, PoolConfig

        model = get_model("ordered_list")
        pool = EnginePool(PoolConfig(
            shards=1, workers=1, deadline=0.01, on_deadline="degrade",
            step_hook_interval=1, flight_dir=str(tmp_path),
        ))
        try:
            pool.register("acct/1", model.entry)
            assert pool.flight("acct/1") is not None
            structure = model.fresh()
            import random
            rng = random.Random(0)
            for _ in range(5):
                for op in model.random_ops(rng):
                    if op.name != "check":
                        pool.mutate("acct/1", model.apply, structure, op)
            pool.engine("acct/1").invalidate()
            pool.set_step_probe(
                "acct/1", lambda: time.sleep(0.002)
            )
            try:
                result = pool.check(
                    "acct/1", *model.check_args(structure),
                    deadline=0.005,
                )
            finally:
                pool.set_step_probe("acct/1", None)
            assert result.flight_dump is not None
            assert os.path.exists(result.flight_dump)
            # Tenant key is sanitized for the filename.
            assert "acct_1" in os.path.basename(result.flight_dump)
            doc = json.load(open(result.flight_dump))
            assert doc["reason"] == "deadline_abort"
            assert doc["stats"]["deadline_aborts"] >= 1
        finally:
            pool.close()

    def test_unregister_detaches_recorder(self, tmp_path):
        from repro.qa.models import get_model
        from repro.serving.pool import EnginePool, PoolConfig

        model = get_model("ordered_list")
        pool = EnginePool(PoolConfig(
            shards=1, workers=1, flight_dir=str(tmp_path)
        ))
        try:
            pool.register("t", model.entry)
            recorder = pool.flight("t")
            assert recorder.engine is not None
            pool.unregister("t")
            assert recorder.engine is None
            with pytest.raises(KeyError):
                pool.flight("t")
        finally:
            pool.close()

    def test_no_flight_dir_no_recorder(self):
        from repro.qa.models import get_model
        from repro.serving.pool import EnginePool, PoolConfig

        model = get_model("ordered_list")
        pool = EnginePool(PoolConfig(shards=1, workers=1))
        try:
            pool.register("t", model.entry)
            assert pool.flight("t") is None
            structure = model.fresh()
            result = pool.check("t", *model.check_args(structure))
            assert result.flight_dump is None
        finally:
            pool.close()
