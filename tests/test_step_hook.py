"""Step-hook countdown freshness.

The hook countdown (`DittoEngine._hook_countdown`) must be re-primed
whenever the hook or the interval is (re)assigned — not only at run entry.
Before the property-setter fix, plain attribute assignment left the
countdown wherever the previous configuration had drained it to, so
tightening the cadence mid-run (the serving layer's deadline-escalation
pattern) silently kept the old, coarser cadence until the stale countdown
expired.
"""

from __future__ import annotations

import pytest

from repro import TrackedObject, check
from repro.serving import DEADLINE, EnginePool, PoolConfig


class Node(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def hook_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return hook_ordered(e.next)


def build(n):
    head = None
    for v in range(n, 0, -1):
        head = Node(v, head)
    return head


# Setter re-priming (white box). ----------------------------------------------


def test_hook_assignment_primes_countdown(engine_factory):
    engine = engine_factory(hook_ordered, step_hook_interval=7)
    engine.step_hook = lambda e: None
    assert engine._hook_countdown == 7


def test_interval_assignment_primes_countdown(engine_factory):
    engine = engine_factory(hook_ordered)
    engine.run(build(60))  # drain the countdown partway
    engine.step_hook_interval = 5
    assert engine._hook_countdown == 5
    assert engine.step_hook_interval == 5


def test_interval_setter_validates(engine_factory):
    engine = engine_factory(hook_ordered)
    with pytest.raises(ValueError):
        engine.step_hook_interval = 0


# Mid-run retuning (the reachable staleness). ---------------------------------


def test_tightening_interval_mid_run_takes_effect_immediately(
    engine_factory,
):
    """A hook that tightens its own cadence (deadline escalation) must get
    the finer cadence from the very next step, not after the stale
    countdown of the old interval expires."""
    fires = []

    def escalate(engine):
        fires.append(engine.steps)
        if len(fires) == 1:
            engine.step_hook_interval = 1

    engine = engine_factory(
        hook_ordered, step_hook=escalate, step_hook_interval=40
    )
    engine.run(build(50))  # ~4 steps per list element
    assert len(fires) >= 3
    # After the first fire every subsequent step must tick the hook:
    # consecutive fire step-counts differ by exactly 1.
    deltas = {b - a for a, b in zip(fires[1:], fires[2:])}
    assert deltas <= {1}, fires


def test_swapped_hook_gets_full_fresh_interval(engine_factory):
    """Replacing the hook mid-run re-primes the countdown: the new hook's
    first fire comes one full interval after installation, regardless of
    how far the old hook's countdown had drained."""
    first_fires, second_fires = [], []

    def second(engine):
        second_fires.append(engine.steps)

    def first(engine):
        first_fires.append(engine.steps)
        engine.step_hook = second

    engine = engine_factory(
        hook_ordered, step_hook=first, step_hook_interval=25
    )
    engine.run(build(50))
    assert len(first_fires) == 1
    assert second_fires, "replacement hook never fired"
    gap = second_fires[0] - first_fires[0]
    assert gap == 25, (first_fires, second_fires)


# Serving-layer flavor: deadline escalation through the pool. -----------------


def test_pool_deadline_enforced_after_probe_tightens_interval():
    """The deadline path stays responsive when a step probe tightens the
    tenant engine's hook cadence mid-run: the deadline test runs at the
    new cadence immediately, so a stalled check is cut off at the next
    tick instead of one stale (coarse) countdown later."""
    clock_value = [0.0]

    def clock():
        return clock_value[0]

    with EnginePool(
        PoolConfig(step_hook_interval=64), clock=clock
    ) as pool:
        pool.register("t", hook_ordered)
        head = build(200)
        assert pool.check("t", head).ok

        ticks = []

        def probe():
            ticks.append(pool.engine("t").steps)
            if len(ticks) == 1:
                # Escalate: from now on test the deadline at every step.
                pool.engine("t").step_hook_interval = 1
                # ... and the deadline is already blown.
                clock_value[0] += 100.0

        pool.set_step_probe("t", probe)

        # Corrupt the deep end: the changed return value propagates back
        # up through every caller, giving the repair run enough steps to
        # reach a hook tick at the initial coarse cadence.
        tail = head
        while tail.next is not None:
            tail = tail.next

        def corrupt():
            tail.value = 0

        pool.mutate("t", corrupt)
        res = pool.check("t", head, deadline=1.0)
        assert res.status == DEADLINE
        # The abort happened at the escalated cadence: the second tick is
        # the very next step after the first, not 64 steps later.
        assert len(ticks) >= 2
        assert ticks[1] - ticks[0] == 1, ticks
