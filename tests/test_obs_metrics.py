"""Metrics registry, Prometheus text round-trip, EngineMetrics bridge."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TrackedObject, check
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    Counter,
    EngineMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def metrics_len(e):
    if e is None:
        return 0
    return 1 + metrics_len(e.next)


def _chain(n):
    head = None
    for v in range(n, 0, -1):
        head = Elem(v, head)
    return head


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_set_total_refuses_decrease(self):
        c = Counter("c")
        c.set_total(10)
        c.set_total(10)  # equal is fine
        with pytest.raises(ValueError):
            c.set_total(9)

    def test_gauge_moves_both_ways(self):
        g = Gauge("g")
        g.set(5)
        g.inc()
        g.dec(3)
        assert g.value == 3.0

    def test_histogram_buckets_cumulative(self):
        h = Histogram("h", buckets=(1, 5, 10))
        for v in (0.5, 1.0, 3, 7, 100):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(111.5)
        assert h.cumulative_buckets() == [
            (1.0, 2),  # 0.5 and 1.0 (bounds are inclusive)
            (5.0, 3),
            (10.0, 4),
            (math.inf, 5),
        ]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(5, 1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1, 2))


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1
        assert reg.get("a") is not None
        assert reg.get("missing") is None

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("3bad-name")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(-1)
        reg.histogram("h", buckets=(1, 2)).observe(1.5)
        snap = reg.snapshot()
        assert snap["c"] == 2.0
        assert snap["g"] == -1.0
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"] == {"1": 0, "2": 1, "+Inf": 1}


class TestPrometheusText:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("app_requests_total", "Requests served").inc(7)
        reg.gauge("app_temperature", "Current level").set(2.5)
        h = reg.histogram("app_latency_seconds", "Latency",
                          buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return reg

    def test_exposition_format(self):
        text = self._registry().to_prometheus_text()
        assert "# HELP app_requests_total Requests served" in text
        assert "# TYPE app_requests_total counter" in text
        assert "app_requests_total 7" in text
        assert "# TYPE app_temperature gauge" in text
        assert "app_temperature 2.5" in text
        assert '# TYPE app_latency_seconds histogram' in text
        assert 'app_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'app_latency_seconds_bucket{le="1"} 2' in text
        assert 'app_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "app_latency_seconds_count 3" in text
        assert text.endswith("\n")

    def test_round_trip(self):
        reg = self._registry()
        parsed = parse_prometheus_text(reg.to_prometheus_text())
        assert parsed["app_requests_total"]["type"] == "counter"
        assert parsed["app_requests_total"]["help"] == "Requests served"
        assert (
            parsed["app_requests_total"]["samples"]["app_requests_total"]
            == 7.0
        )
        assert parsed["app_temperature"]["samples"]["app_temperature"] == 2.5
        hist = parsed["app_latency_seconds"]
        assert hist["type"] == "histogram"
        samples = hist["samples"]
        # Histogram samples fold back into the base family.
        assert samples['app_latency_seconds_bucket{le="+Inf"}'] == 3.0
        assert samples["app_latency_seconds_count"] == 3.0
        assert samples["app_latency_seconds_sum"] == pytest.approx(5.55)
        assert "app_latency_seconds_bucket" not in parsed

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus_text("!!! not a sample\n")

    def test_parse_skips_comments_and_blanks(self):
        parsed = parse_prometheus_text("# a comment\n\nx 1\n")
        assert parsed["x"]["samples"]["x"] == 1.0
        assert parsed["x"]["type"] == "untyped"


class TestHistogramBoundarySemantics:
    """Satellite: pin the ``le`` inclusive-at-boundary contract.

    An observation exactly equal to a bucket bound lands in that bucket
    (Prometheus ``le`` = less-than-*or-equal*); the implementation note
    in :class:`repro.obs.metrics.Histogram` warns against the
    ``bisect_right`` rewrite that would silently flip this."""

    BOUNDS = (0.001, 0.25, 1.0, 60.0)

    def test_exact_boundary_is_inclusive(self):
        for bound in self.BOUNDS:
            h = Histogram("h", buckets=self.BOUNDS)
            h.observe(bound)
            cumulative = dict(h.cumulative_buckets())
            assert cumulative[bound] == 1, bound
            # Strictly-below bounds must NOT count it.
            for other in self.BOUNDS:
                if other < bound:
                    assert cumulative[other] == 0

    def test_above_top_bound_lands_only_in_inf(self):
        h = Histogram("h", buckets=self.BOUNDS)
        h.observe(61.0)
        cumulative = dict(h.cumulative_buckets())
        assert all(cumulative[b] == 0 for b in self.BOUNDS)
        assert cumulative[math.inf] == 1

    def _round_trip(self, values):
        """Observe ``values``; parse the exposition text back; return the
        parsed cumulative bucket counts keyed by ``le`` string."""
        reg = MetricsRegistry()
        h = reg.histogram("rt_seconds", "round trip",
                          buckets=self.BOUNDS)
        for v in values:
            h.observe(v)
        parsed = parse_prometheus_text(reg.to_prometheus_text())
        samples = parsed["rt_seconds"]["samples"]
        counts = {}
        for key, value in samples.items():
            if key.startswith('rt_seconds_bucket{le="'):
                le = key[len('rt_seconds_bucket{le="'):-2]
                counts[le] = value
        return counts, samples

    def test_round_trip_of_edge_observations(self):
        """Every observation sits exactly on a bound (or past the top):
        the text exposition must reproduce the in-memory cumulative
        counts, ``+Inf`` included."""
        values = list(self.BOUNDS) + [100.0, 0.0]  # past-top and at-zero
        counts, samples = self._round_trip(values)
        expected = {
            str_bound: sum(1 for v in values if v <= bound)
            for bound, str_bound in zip(
                self.BOUNDS, ("0.001", "0.25", "1", "60")
            )
        }
        for key, want in expected.items():
            assert counts[key] == want, key
        assert counts["+Inf"] == len(values)
        assert samples["rt_seconds_count"] == len(values)

    @given(
        st.lists(
            st.one_of(
                st.sampled_from(BOUNDS),          # exact bounds
                st.sampled_from(BOUNDS).map(
                    lambda b: b * (1 + 1e-9)      # just past a bound
                ),
                st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_text_round_trip(self, values):
        counts, samples = self._round_trip(values)
        le_of = dict(zip(self.BOUNDS, ("0.001", "0.25", "1", "60")))
        for bound, le in le_of.items():
            assert counts[le] == sum(1 for v in values if v <= bound)
        assert counts["+Inf"] == len(values)
        assert samples["rt_seconds_count"] == len(values)
        assert samples["rt_seconds_sum"] == pytest.approx(
            sum(values), abs=1e-6
        )


class TestEngineMetrics:
    def test_counters_mirrored(self, engine_factory):
        engine = engine_factory(metrics_len)
        metrics = EngineMetrics(engine)
        engine.run(_chain(5))
        metrics.refresh()
        snap = metrics.registry.snapshot()
        assert snap["ditto_runs_total"] == engine.stats.runs == 1
        assert snap["ditto_execs_total"] == engine.stats.execs
        assert snap["ditto_graph_size_nodes"] == engine.graph_size

    def test_record_run_feeds_histograms(self, engine_factory):
        engine = engine_factory(metrics_len)
        metrics = EngineMetrics(engine)
        head = _chain(5)
        metrics.record_run(engine.run_with_report(head))
        head.next.next = Elem(9, head.next.next)
        report = engine.run_with_report(head)
        metrics.record_run(report)
        assert metrics.run_duration.count == 2
        assert metrics.run_duration.sum > 0
        assert metrics.dirtied_nodes.count == 2
        # The incremental run dirtied at least the writer's reader node.
        assert report.delta["dirty_marked"] >= 1
        assert metrics.graph_size_hist.count == 2

    def test_prometheus_round_trip_matches_stats(self, engine_factory):
        engine = engine_factory(metrics_len)
        metrics = EngineMetrics(engine, namespace="obs")
        head = _chain(4)
        engine.run(head)
        parsed = parse_prometheus_text(metrics.to_prometheus_text())
        assert (
            parsed["obs_execs_total"]["samples"]["obs_execs_total"]
            == float(engine.stats.execs)
        )
        # Phase timers surface as per-phase counters.
        assert "obs_phase_seconds_total_exec" in parsed
        exec_seconds = parsed["obs_phase_seconds_total_exec"]["samples"][
            "obs_phase_seconds_total_exec"
        ]
        assert exec_seconds == pytest.approx(engine.stats.time_exec)

    def test_shared_registry(self, engine_factory):
        reg = MetricsRegistry()
        a = engine_factory(metrics_len)
        metrics = EngineMetrics(a, registry=reg, namespace="a")
        assert metrics.registry is reg
        assert reg.get("a_runs_total") is not None

    def test_default_size_buckets_cover_graph(self):
        assert DEFAULT_SIZE_BUCKETS[0] == 0
        assert DEFAULT_SIZE_BUCKETS[-1] == 10000
