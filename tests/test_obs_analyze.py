"""Offline analyzer: document classification, summaries, bench-history
gating, and the acceptance path — a chaos-produced flight artifact read
back and summarized by ``python -m repro.obs analyze``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.analyze import (
    analyze,
    diff_bench,
    diff_traces,
    load_document,
    summarize_flight_dump,
    summarize_profile,
    summarize_regression,
    summarize_trace,
)

BENCH = {
    "benchmark": "serving",
    "p50_ms": 3.0,
    "p99_ms": 90.0,
    "serve_seconds": 2.0,
    "setup_seconds": 5.0,
    "nested": {"filter_on": {"seconds": 0.5}},
    "speedup": 18.0,
    "statuses": {"ok": 100},
}


class TestClassification:
    def test_kinds_by_document(self, tmp_path):
        cases = {
            "flight.json": ({"kind": "flight_dump"}, "flight_dump"),
            "profile.json": ({"kind": "repair_profile"},
                             "repair_profile"),
            "report.json": ({"kind": "regression_report"},
                            "regression_report"),
            "chaos.json": ({"divergences": [], "faults_injected": {}},
                           "chaos"),
            "BENCH_x.json": (BENCH, "bench"),
            "chrome.json": ({"traceEvents": []}, "chrome_trace"),
            "other.json": ({"hello": 1}, "unknown"),
        }
        for name, (doc, expected) in cases.items():
            path = tmp_path / name
            path.write_text(json.dumps(doc))
            kind, _ = load_document(str(path))
            assert kind == expected, name

    def test_jsonl_by_extension_and_content(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"kind": "span", "name": "exec", "ts_us": 0, "dur_us": 5}\n'
            '{"kind": "instant", "name": "reuse", "ts_us": 6}\n'
        )
        kind, events = load_document(str(path))
        assert kind == "trace_jsonl"
        assert len(events) == 2
        # Same content without the extension still classifies by shape.
        path2 = tmp_path / "trace.log"
        path2.write_text(path.read_text())
        kind2, events2 = load_document(str(path2))
        assert kind2 == "trace_jsonl"
        assert events2 == events

    def test_corrupt_jsonl_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_document(str(path))


class TestSummaries:
    def test_trace_summary_aggregates_spans(self):
        events = [
            {"kind": "span", "name": "exec", "dur_us": 1000.0},
            {"kind": "span", "name": "exec", "dur_us": 3000.0},
            {"kind": "instant", "name": "reuse"},
        ]
        text = summarize_trace(events)
        assert "span exec: 2 x" in text
        assert "total 4.000ms" in text
        assert "mean 2.0000ms" in text
        assert "instant reuse: 1 x" in text

    def test_summaries_tolerate_minimal_documents(self):
        assert "flight dump" in summarize_flight_dump(
            {"kind": "flight_dump"}
        )
        assert "repair profile" in summarize_profile(
            {"kind": "repair_profile"}
        )
        assert "regression report" in summarize_regression(
            {"kind": "regression_report"}
        )


class TestDiffBench:
    def test_lower_better_drift(self):
        current = dict(BENCH, p99_ms=270.0)
        (drift,) = diff_bench(current, BENCH, threshold=1.5)
        assert drift["metric"] == "p99_ms"
        assert drift["ratio"] == pytest.approx(3.0)
        assert drift["direction"] == "lower-is-better"

    def test_higher_better_drift(self):
        current = dict(BENCH, speedup=6.0)
        (drift,) = diff_bench(current, BENCH, threshold=1.5)
        assert drift["metric"] == "speedup"
        assert drift["direction"] == "higher-is-better"

    def test_nested_keys_and_ungated_noise(self):
        current = json.loads(json.dumps(BENCH))
        current["nested"]["filter_on"]["seconds"] = 2.0   # 4x: gated
        current["setup_seconds"] = 100.0                  # noisy: ignored
        current["statuses"]["ok"] = 1                     # count: ignored
        drifts = diff_bench(current, BENCH, threshold=1.5)
        assert [d["metric"] for d in drifts] == [
            "nested.filter_on.seconds"
        ]

    def test_within_threshold_is_quiet(self):
        current = dict(BENCH, p99_ms=120.0)  # 1.33x < 1.5x
        assert diff_bench(current, BENCH, threshold=1.5) == []

    def test_identity_is_quiet(self):
        assert diff_bench(BENCH, BENCH, threshold=1.5) == []


class TestDiffTraces:
    def test_span_total_drift(self):
        before = [{"kind": "span", "name": "exec", "dur_us": 100.0}]
        after = [
            {"kind": "span", "name": "exec", "dur_us": 180.0},
            {"kind": "instant", "name": "reuse"},
        ]
        (drift,) = diff_traces(before, after, threshold=1.5)
        assert drift["metric"] == "span.exec.total_us"
        assert drift["ratio"] == pytest.approx(1.8)
        # Shrinkage past the inverse threshold reports too.
        (shrink,) = diff_traces(after, before, threshold=1.5)
        assert shrink["ratio"] == pytest.approx(1 / 1.8)


class TestCli:
    def test_usage_errors_exit_2(self, capsys, tmp_path):
        assert analyze([]) == 2
        missing = str(tmp_path / "missing.json")
        assert analyze([missing]) == 2
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(BENCH))
        assert analyze([str(bench), "--threshold", "0.9"]) == 2

    def test_gate_passes_and_fails(self, capsys, tmp_path):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        (baseline_dir / "BENCH_x.json").write_text(json.dumps(BENCH))
        current = tmp_path / "BENCH_x.json"
        current.write_text(json.dumps(BENCH))
        assert analyze([str(current), "--against", str(baseline_dir),
                        "--gate"]) == 0
        assert "no drift" in capsys.readouterr().out
        current.write_text(json.dumps(dict(BENCH, p99_ms=500.0)))
        assert analyze([str(current), "--against", str(baseline_dir),
                        "--gate"]) == 1
        out = capsys.readouterr().out
        assert "DRIFT p99_ms" in out
        assert "GATE FAILURE" in out
        # Without --gate the drift is reported but does not fail.
        assert analyze([str(current), "--against",
                        str(baseline_dir)]) == 0

    def test_missing_baseline_is_skipped(self, capsys, tmp_path):
        current = tmp_path / "BENCH_new.json"
        current.write_text(json.dumps(BENCH))
        empty = tmp_path / "empty"
        empty.mkdir()
        assert analyze([str(current), "--against", str(empty),
                        "--gate"]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_json_record(self, capsys, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(dict(BENCH, p99_ms=500.0)))
        baseline_dir = tmp_path / "b"
        baseline_dir.mkdir()
        (baseline_dir / "BENCH_x.json").write_text(json.dumps(BENCH))
        out_path = tmp_path / "analysis.json"
        analyze([str(bench), "--against", str(baseline_dir),
                 "--json", str(out_path)])
        record = json.loads(out_path.read_text())
        assert record["documents"][0]["kind"] == "bench"
        assert record["drifts"][0]["metric"] == "p99_ms"

    def test_module_entrypoint(self, tmp_path):
        import subprocess
        import sys

        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(BENCH))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "analyze", str(bench)],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "bench record: serving" in proc.stdout


class TestAcceptance:
    def test_chaos_flight_artifact_reads_back(self, capsys, tmp_path):
        """Forced deadline abort in the chaos/pool stack produces a
        flight artifact the analyzer summarizes."""
        from repro.qa.models import get_model
        from repro.serving.pool import EnginePool, PoolConfig

        model = get_model("ordered_list")
        pool = EnginePool(PoolConfig(
            shards=1, workers=1, deadline=0.01, on_deadline="degrade",
            step_hook_interval=1, flight_dir=str(tmp_path),
        ))
        try:
            pool.register("t", model.entry)
            structure = model.fresh()
            import random
            rng = random.Random(0)
            for _ in range(5):
                for op in model.random_ops(rng):
                    if op.name != "check":
                        pool.mutate("t", model.apply, structure, op)
            pool.engine("t").invalidate()
            pool.set_step_probe("t", lambda: time.sleep(0.002))
            try:
                result = pool.check(
                    "t", *model.check_args(structure), deadline=0.005
                )
            finally:
                pool.set_step_probe("t", None)
        finally:
            pool.close()
        assert result.flight_dump is not None
        assert analyze([result.flight_dump]) == 0
        out = capsys.readouterr().out
        assert "[flight_dump]" in out
        assert "trigger: deadline_abort" in out
        assert "black box:" in out
        assert "is_ordered" in out
