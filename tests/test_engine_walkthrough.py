"""The paper's §2 walkthrough, re-enacted and asserted step by step:
an element inserted into the middle of the list and another deleted further
down, checked in one incremental run."""

from __future__ import annotations

from repro import TrackedObject, check


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next

    def __repr__(self):
        return f"Elem({self.value})"


@check
def walkthrough_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return walkthrough_ordered(e.next)


def chain(*values):
    head = None
    elems = {}
    for v in reversed(values):
        head = Elem(v, head)
        elems[v] = head
    return head, elems


class TestSection2Walkthrough:
    def test_insert_and_delete_one_incremental_run(self, engine_factory):
        # List A -> C -> D -> E -> F (paper Figure 2, letters as values).
        head, elems = chain(1, 3, 4, 5, 6)  # A=1, C=3, D=4, E=5, F=6
        engine = engine_factory(walkthrough_ordered)
        assert engine.run(head) is True
        assert engine.graph_size == 5

        # Insert B(2) after A, delete E(5) — both before the next check.
        a, c, d, e, f = (elems[v] for v in (1, 3, 4, 5, 6))
        b = Elem(2, c)
        a.next = b          # modifies implicit input of isOrdered(A)
        d.next = f          # modifies implicit input of isOrdered(D)

        report = engine.run_with_report(head)
        assert report.result is True
        # Exactly the two invocations with changed implicit inputs re-ran,
        # plus the brand-new isOrdered(B).
        assert report.delta["dirty_execs"] == 2
        assert report.delta["execs"] == 3
        assert report.delta["nodes_created"] == 1
        # isOrdered(C) and isOrdered(F) were optimistically reused.
        assert report.delta["reuses"] == 2
        # isOrdered(E) fell out of the computation and was pruned.
        assert report.delta["nodes_pruned"] == 1
        assert engine.graph_size == 5

        snapshot = engine.graph_snapshot()
        assert ("walkthrough_ordered", (b,)) in snapshot
        assert ("walkthrough_ordered", (e,)) not in snapshot

    def test_no_propagation_when_values_unchanged(self, engine_factory):
        head, elems = chain(1, 3, 4, 5, 6)
        engine = engine_factory(walkthrough_ordered)
        engine.run(head)
        elems[1].next = Elem(2, elems[1].next)
        report = engine.run_with_report(head)
        # All re-executed invocations returned True as before: the
        # recomputation ends without propagating to ancestors.
        assert report.delta["propagation_execs"] == 0

    def test_changed_value_propagates_to_root(self, engine_factory):
        head, elems = chain(1, 3, 4, 5, 6)
        engine = engine_factory(walkthrough_ordered)
        engine.run(head)
        # Break ordering at the tail: isOrdered(E) flips to False and the
        # new value must climb the caller chain all the way to the root.
        elems[5].value = 0  # 4 > 0
        report = engine.run_with_report(head)
        assert report.result is False
        # isOrdered(D) flipped; the new value climbs through isOrdered(C)
        # and isOrdered(A) — the full caller chain up to the root.
        assert report.delta["propagation_execs"] == 2
        assert engine.graph_snapshot()[("walkthrough_ordered", (head,))] is False

    def test_propagation_stops_at_agreeing_ancestor(self, engine_factory):
        # 1,3,4,5,6 but already broken at the head (1 > 0 impossible —
        # instead break at position 2), then break deeper: ancestors above
        # the first break already return False and propagation stops early.
        head, elems = chain(1, 30, 4, 5, 6)  # 30 > 4 breaks at C
        engine = engine_factory(walkthrough_ordered)
        assert engine.run(head) is False
        before = engine.stats.snapshot()
        elems[5].value = 0  # second break deeper: 4 > 0
        report = engine.run_with_report(head)
        assert report.result is False
        # isOrdered(D) flips to False, but its caller isOrdered(C=30)
        # still returns False -> propagation stops below the root.
        assert report.delta["propagation_execs"] <= 2
