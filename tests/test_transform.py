"""Source-to-source instrumentation (paper Figure 3): rewritten reads and
calls, the runtime purity police for helpers and methods."""

from __future__ import annotations

import pytest

from repro import (
    DittoEngine,
    TrackedArray,
    TrackedObject,
    TrackingError,
    check,
    instrumented_source,
    register_pure_helper,
    register_pure_method,
)
from repro.instrument.transform import is_pure_helper, is_pure_method


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


class Mutable:
    """Deliberately untracked mutable object."""

    def __init__(self):
        self.value = 1

    def poke(self):
        return self.value


@check
def reads_fields(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return reads_fields(e.next)


@check
def reads_array(holder, i):
    a = holder.items
    if i >= len(a):
        return True
    ok = a[i] is None or a[i] >= 0
    b = reads_array(holder, i + 1)
    return ok and b


class Holder(TrackedObject):
    def __init__(self, items):
        self.items = TrackedArray(items)


class TestInstrumentedSource:
    def test_field_reads_diverted(self):
        src = instrumented_source(
            reads_fields, {"reads_fields": reads_fields.uid}
        )
        assert "__ditto_rt__.get_attr(e, 'next')" in src
        assert "__ditto_rt__.get_attr(e, 'value')" in src

    def test_check_calls_diverted(self):
        src = instrumented_source(
            reads_fields, {"reads_fields": reads_fields.uid}
        )
        assert f"__ditto_rt__.call({reads_fields.uid}" in src

    def test_len_and_subscript_diverted(self):
        src = instrumented_source(reads_array, {})
        assert "__ditto_rt__.get_len" in src
        assert "__ditto_rt__.get_item" in src

    def test_pure_builtins_left_alone(self):
        @check
        def uses_abs(x):
            return abs(x) >= 0

        src = instrumented_source(uses_abs, {})
        assert "abs(" in src
        assert "helper" not in src

    def test_unknown_call_wrapped_as_helper(self):
        @check
        def calls_helper(x):
            return mystery(x)  # noqa: F821

        src = instrumented_source(calls_helper, {})
        assert "__ditto_rt__.helper(mystery, x)" in src

    def test_method_call_wrapped(self):
        @check
        def calls_method(s):
            return s.startswith("a")

        src = instrumented_source(calls_method, {})
        assert "__ditto_rt__.method(s, 'startswith', 'a')" in src

    def test_engine_exposes_source(self, engine_factory):
        engine = engine_factory(reads_fields)
        assert "__ditto_rt__" in engine.instrumented_source()


class TestRuntimePolicing:
    def test_untracked_mutable_attr_read_strict(self, engine_factory):
        @check
        def reads_untracked(m):
            if m is None:
                return True
            return m.value == 1

        engine = engine_factory(reads_untracked, strict=True)
        with pytest.raises(TrackingError):
            engine.run(Mutable())

    def test_untracked_mutable_attr_read_lenient(self, engine_factory):
        @check
        def reads_untracked2(m):
            if m is None:
                return True
            return m.value == 1

        engine = engine_factory(reads_untracked2, strict=False)
        assert engine.run(Mutable()) is True

    def test_unregistered_helper_strict(self, engine_factory):
        def shady(x):
            return x

        @check
        def calls_shady(n):
            return shady(n) is None

        engine = engine_factory(calls_shady, strict=True)
        with pytest.raises(TrackingError):
            engine.run(None)

    def test_registered_helper_allowed(self, engine_factory):
        @register_pure_helper
        def blessed(x):
            return x

        @check
        def calls_blessed(n):
            return blessed(n) is None

        engine = engine_factory(calls_blessed, strict=True)
        assert engine.run(None) is True

    def test_method_on_immutable_allowed(self, engine_factory):
        @check
        def str_method(s):
            return s.startswith("he")

        engine = engine_factory(str_method)
        assert engine.run("hello") is True
        assert engine.run("goodbye") is False

    def test_method_on_untracked_mutable_strict(self, engine_factory):
        @check
        def calls_poke(m):
            return m.poke() == 1

        engine = engine_factory(calls_poke, strict=True)
        with pytest.raises(TrackingError):
            engine.run(Mutable())

    def test_registered_pure_method_allowed(self, engine_factory):
        class Tagged(TrackedObject):
            def __init__(self, tag):
                self.tag = tag

            def tag_upper(self):
                return self.tag.upper()

        register_pure_method(Tagged, "tag_upper")

        @check
        def calls_tag(t):
            return t.tag_upper() == "A"

        engine = engine_factory(calls_tag, strict=True)
        assert engine.run(Tagged("a")) is True

    def test_untracked_index_strict(self, engine_factory):
        @check
        def indexes_list(xs):
            return xs[0] == 1

        engine = engine_factory(indexes_list, strict=True)
        with pytest.raises(TrackingError):
            engine.run([1, 2])
        # Tuples are immutable: fine.
        assert engine.run((1, 2)) is True

    def test_untracked_len_strict(self, engine_factory):
        @check
        def takes_len(xs):
            return len(xs) == 2

        engine = engine_factory(takes_len, strict=True)
        with pytest.raises(TrackingError):
            engine.run([1, 2])
        assert engine.run("ab") is True


class TestPurityRegistry:
    def test_is_pure_helper_builtin(self):
        assert is_pure_helper(abs)
        assert is_pure_helper(max)
        assert not is_pure_helper(print)

    def test_is_pure_method_immutables(self):
        assert is_pure_method("s", "upper")
        assert is_pure_method(1, "bit_length")
        assert is_pure_method((1,), "count")
        assert not is_pure_method([1], "append")

    def test_register_pure_method_subclass(self):
        class Base:
            def f(self):
                return 1

        class Derived(Base):
            pass

        register_pure_method(Base, "f")
        assert is_pure_method(Derived(), "f")


class TestEndToEnd:
    def test_instrumented_matches_original(self, engine_factory):
        engine = engine_factory(reads_fields)
        head = Elem(1, Elem(2, Elem(3)))
        assert engine.run(head) == reads_fields(head) is True
        bad = Elem(9, Elem(2))
        assert engine.run(bad) == reads_fields(bad) is False

    def test_array_check(self, engine_factory):
        engine = engine_factory(reads_array)
        holder = Holder([1, 2, None, 4])
        assert engine.run(holder, 0) is True
        holder.items[1] = -5
        assert engine.run(holder, 0) is False
        holder.items[1] = 5
        assert engine.run(holder, 0) is True
