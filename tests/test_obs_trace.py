"""Structured tracing: sinks, engine span/instant emission, serializers."""

from __future__ import annotations

import io
import json

import pytest

from repro import TrackedObject, check
from repro.core.stats import PHASES
from repro.obs import (
    INSTANT_NAMES,
    SPAN_NAMES,
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TeeSink,
    TraceEvent,
    TraceSink,
    validate_chrome_trace,
)


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def trace_len(e):
    if e is None:
        return 0
    return 1 + trace_len(e.next)


def _chain(n):
    head = None
    for v in range(n, 0, -1):
        head = Elem(v, head)
    return head


class TestSinkPrimitives:
    def test_events_emitted_counts(self):
        sink = RingBufferSink()
        sink.span("exec", 1.0, 0.5)
        sink.instant("reuse", 1.2)
        assert sink.events_emitted == 2
        assert len(sink) == 2

    def test_base_sink_requires_record(self):
        sink = TraceSink()
        with pytest.raises(NotImplementedError):
            sink.span("exec", 0.0, 0.0)

    def test_ring_buffer_capacity(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.instant(f"e{i}", float(i))
        assert len(sink) == 3
        assert [e.name for e in sink] == ["e7", "e8", "e9"]
        assert sink.events_emitted == 10  # counter is not windowed

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_span_instant_filters(self):
        sink = RingBufferSink()
        sink.span("exec", 0.0, 1.0, {"n": 1})
        sink.span("prune", 1.0, 0.5)
        sink.instant("reuse", 2.0)
        assert [e.name for e in sink.spans()] == ["exec", "prune"]
        assert sink.spans("exec")[0].args == {"n": 1}
        assert [e.name for e in sink.instants()] == ["reuse"]
        sink.clear()
        assert len(sink) == 0

    def test_event_shape(self):
        sink = RingBufferSink()
        sink.instant("x", 3.0)
        event = sink.events()[0]
        assert isinstance(event, TraceEvent)
        assert event.kind == "instant"
        assert event.dur is None


class TestEngineEmission:
    def test_default_engine_does_not_trace(self, engine_factory):
        engine = engine_factory(trace_len, trace_sink=NullSink())
        assert engine.tracing is False
        engine.run(_chain(5))
        assert engine.trace_sink.events_emitted == 0

    def test_initial_run_emits_exec_span(self, engine_factory):
        sink = RingBufferSink()
        engine = engine_factory(trace_len, trace_sink=sink)
        assert engine.tracing is True
        engine.run(_chain(5))
        exec_spans = sink.spans("exec")
        assert len(exec_spans) == 1
        assert exec_spans[0].dur >= 0
        # One node per element; the None call is leaf-inlined.
        assert len(sink.instants("node_exec")) == 5
        assert len(sink.instants("leaf_exec")) == 1

    def test_incremental_run_emits_phase_spans(self, engine_factory):
        sink = RingBufferSink()
        engine = engine_factory(trace_len, trace_sink=sink)
        head = _chain(8)
        engine.run(head)
        sink.clear()
        head.next.next = Elem(99, head.next.next)
        engine.run(head)
        names = {e.name for e in sink.spans()}
        assert {"barrier_drain", "dirty_mark", "exec"} <= names
        assert names <= set(PHASES)
        # The repair reused the unaffected suffix.
        assert sink.instants("reuse")

    def test_sink_swappable_at_runtime(self, engine_factory):
        engine = engine_factory(trace_len, trace_sink=NullSink())
        head = _chain(4)
        engine.run(head)
        ring = RingBufferSink()
        engine.trace_sink = ring
        assert engine.tracing is True
        head.next.next = None
        engine.run(head)
        assert ring.events_emitted > 0
        engine.trace_sink = NullSink()
        assert engine.tracing is False

    def test_prune_span_carries_removed_count(self, engine_factory):
        sink = RingBufferSink()
        engine = engine_factory(trace_len, trace_sink=sink)
        head = _chain(6)
        engine.run(head)
        sink.clear()
        head.next.next = None  # drop a 4-node suffix
        engine.run(head)
        prune_spans = sink.spans("prune")
        assert prune_spans
        assert sum(s.args["removed"] for s in prune_spans) == 4


class TestJsonlSink:
    def test_lines_are_json_with_rebased_micros(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.span("exec", 10.0, 0.001, {"n": 2})
        sink.instant("reuse", 10.002)
        sink.close()
        lines = [json.loads(l) for l in buffer.getvalue().splitlines()]
        assert lines[0]["name"] == "exec"
        assert lines[0]["ts_us"] == 0.0
        assert lines[0]["dur_us"] == pytest.approx(1000.0)
        assert lines[0]["args"] == {"n": 2}
        assert lines[1]["ts_us"] == pytest.approx(2000.0)
        assert "dur_us" not in lines[1]

    def test_path_target_owned(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        sink.instant("x", 1.0)
        sink.close()
        assert json.loads(path.read_text())["name"] == "x"


class TestJsonlFlushAndRotation:
    def test_explicit_flush_makes_lines_visible(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        sink.instant("a", 1.0)
        sink.flush()
        # Visible on disk before close (a tail -f would see it).
        assert path.read_text().count("\n") == 1
        sink.instant("b", 2.0)
        sink.close()
        assert path.read_text().count("\n") == 2

    def test_flush_every_autoflushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), flush_every=3)
        for i in range(5):
            sink.instant("e", float(i))
        # 3 flushed at the threshold; 2 still buffered (at most).
        assert path.read_text().count("\n") >= 3
        sink.close()
        assert path.read_text().count("\n") == 5

    def test_rotation_shifts_backups_and_caps_disk(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), max_bytes=200, backups=2)
        for i in range(40):
            sink.instant("tick", float(i), args={"i": i})
        sink.close()
        assert sink.rotations >= 2
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [
            "events.jsonl", "events.jsonl.1", "events.jsonl.2"
        ]  # nothing past `backups` survives
        # Every surviving file is whole JSON lines under the cap...
        newest_i = None
        for name in ("events.jsonl.2", "events.jsonl.1", "events.jsonl"):
            body = (tmp_path / name).read_bytes()
            assert len(body) <= 200
            for line in body.decode().splitlines():
                event = json.loads(line)
                # ...with timestamps monotone across the concatenation:
                # one clock from the capture's first event.
                if newest_i is not None:
                    assert event["args"]["i"] > newest_i
                newest_i = event["args"]["i"]
        assert newest_i == 39  # the newest event is in the live file

    def test_oversized_line_lands_whole(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), max_bytes=64, backups=1)
        sink.instant("small", 0.0)
        sink.instant("big", 1.0, args={"blob": "x" * 500})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1  # rotated first, then written unsplit
        assert json.loads(lines[0])["args"]["blob"] == "x" * 500

    def test_rotation_rejects_file_objects_and_bad_params(self, tmp_path):
        with pytest.raises(ValueError, match="path target"):
            JsonlSink(io.StringIO(), max_bytes=100)
        with pytest.raises(ValueError, match="max_bytes"):
            JsonlSink(str(tmp_path / "x"), max_bytes=0)
        with pytest.raises(ValueError, match="backups"):
            JsonlSink(str(tmp_path / "x"), max_bytes=10, backups=0)
        with pytest.raises(ValueError, match="flush_every"):
            JsonlSink(str(tmp_path / "x"), flush_every=0)


class TestTeeSink:
    def test_fans_out_to_all_children(self):
        a, b = RingBufferSink(), RingBufferSink()
        tee = TeeSink([a, b])
        tee.span("exec", 0.0, 1.0, {"n": 1})
        tee.instant("reuse", 2.0)
        for child in (a, b):
            assert [e.name for e in child.events()] == ["exec", "reuse"]
            assert child.spans("exec")[0].args == {"n": 1}
        assert tee.events_emitted == 2

    def test_rejects_non_sinks_and_empty(self):
        with pytest.raises(ValueError):
            TeeSink([])
        with pytest.raises(TypeError):
            TeeSink([RingBufferSink(), "not a sink"])

    def test_close_closes_children(self, tmp_path):
        path = tmp_path / "events.jsonl"
        jsonl = JsonlSink(str(path))
        ring = RingBufferSink()
        tee = TeeSink([jsonl, ring])
        tee.instant("x", 0.0)
        tee.close()
        assert json.loads(path.read_text())["name"] == "x"


class TestNameRegistries:
    def test_span_names_are_engine_phases(self):
        assert SPAN_NAMES == frozenset(PHASES)

    def test_instant_names_include_observability_events(self):
        assert {"profile_sample", "flight_dump", "regression_alert",
                "node_exec", "reuse", "misprediction"} <= INSTANT_NAMES


class TestChromeTraceSink:
    def test_trace_file_round_trip(self, tmp_path, engine_factory):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path))
        engine = engine_factory(trace_len, trace_sink=sink)
        head = _chain(6)
        engine.run(head)
        head.next.next = None
        engine.run(head)
        sink.close()
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []
        events = data["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        complete = [e for e in events if e["ph"] == "X"]
        assert {"exec"} <= {e["name"] for e in complete}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)

    def test_file_like_target(self):
        buffer = io.StringIO()
        sink = ChromeTraceSink(buffer)
        sink.span("exec", 5.0, 0.25)
        sink.close()
        data = json.loads(buffer.getvalue())
        assert validate_chrome_trace(data) == []


class TestValidateChromeTrace:
    def test_accepts_bare_array(self):
        assert validate_chrome_trace(
            [{"name": "a", "ph": "i", "ts": 0, "s": "t"}]
        ) == []

    def test_flags_bad_ph(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"name": "a", "ph": "Z", "ts": 0}]}
        )
        assert any("bad 'ph'" in p for p in problems)

    def test_flags_missing_dur_on_complete_event(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"name": "a", "ph": "X", "ts": 0}]}
        )
        assert any("'dur'" in p for p in problems)

    def test_flags_negative_ts_and_bad_top_level(self):
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "a", "ph": "i", "ts": -1}]}
        )
        assert validate_chrome_trace({"nope": 1})
        assert validate_chrome_trace({"traceEvents": []})  # no events

    def test_strict_raises(self):
        with pytest.raises(ValueError, match="invalid Chrome trace"):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]},
                                  strict=True)

    def test_known_names_checks_registries(self):
        good = {"traceEvents": [
            {"name": "exec", "ph": "X", "ts": 0, "dur": 1},
            {"name": "flight_dump", "ph": "i", "ts": 1, "s": "t"},
        ]}
        assert validate_chrome_trace(good, known_names=True) == []
        bad = {"traceEvents": [
            {"name": "bogus_span", "ph": "X", "ts": 0, "dur": 1},
            {"name": "bogus_instant", "ph": "i", "ts": 1, "s": "t"},
        ]}
        assert validate_chrome_trace(bad) == []  # off by default
        problems = validate_chrome_trace(bad, known_names=True)
        assert len(problems) == 2
        assert any("unknown span name" in p for p in problems)
        assert any("unknown instant name" in p for p in problems)

    def test_unreadable_path(self, tmp_path):
        problems = validate_chrome_trace(str(tmp_path / "missing.json"))
        assert any("unreadable" in p for p in problems)
