"""Per-engine isolation domains: the PR-4 barrier snapshots, unshared.

Regression suite for the cross-wiring bug: ``core/tracked.py`` used to
snapshot the monitored-field frozenset and the bound ``write_log.append``
into *module globals*, so the second engine registered in a process
re-pointed the hot path for every already-tracked structure — and a
fault hook armed against one engine's write log intercepted every other
engine's barriers too.  Each test here failed (or silently cross-wired)
before the per-:class:`TrackingState` scoping.
"""

from __future__ import annotations

import pytest

from repro import DittoEngine, FaultPlan, TrackedObject, check, inject_faults
from repro.core.errors import TenantIsolationError
from repro.core.tracked import TrackingState, adopt_container

pytestmark = pytest.mark.serving


class Node(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def iso_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return iso_ordered(e.next)


def build(*values):
    head = None
    for v in reversed(values):
        head = Node(v, head)
    return head


def two_isolated_engines():
    a = DittoEngine(iso_ordered, tracking=TrackingState())
    b = DittoEngine(iso_ordered, tracking=TrackingState())
    return a, b


def test_two_live_engines_log_to_their_own_domains():
    """A barrier fired under tenant A must land in A's log only.

    Before the fix the module-global ``_log_append`` snapshot pointed at
    whichever state registered last, so A's mutations landed in B's log
    (and A's engine went silently stale)."""
    ea, eb = two_isolated_engines()
    try:
        head_a = build(1, 2, 3)
        head_b = build(4, 5, 6)
        assert ea.run(head_a) is True
        assert eb.run(head_b) is True  # second registration: the trigger

        head_a.next.value = 0  # monitored write under tenant A
        assert ea.tracking.write_log.peek(ea._log_cid), (
            "tenant A's own write log must see tenant A's barrier"
        )
        assert not eb.tracking.write_log.peek(eb._log_cid), (
            "tenant B's write log must not see tenant A's barrier"
        )
        # And the repair happens on the right engine.
        assert ea.run(head_a) is False
        assert eb.run(head_b) is True
    finally:
        ea.close()
        eb.close()


def test_fault_hook_armed_on_one_engine_cannot_drop_anothers_barriers():
    """A FaultPlan against tenant A must be unobservable by tenant B.

    Before the fix ``WriteLog.fault_hook`` lived on the single global
    log: arming drop_writes for A dropped B's barriers too, making B
    serve a stale (wrong) answer with no fault of its own."""
    ea, eb = two_isolated_engines()
    try:
        head_a = build(1, 2, 3)
        head_b = build(4, 5, 6)
        assert ea.run(head_a) is True
        assert eb.run(head_b) is True

        with inject_faults(ea, FaultPlan(drop_writes=10)) as injector:
            head_a.next.value = 0  # dropped: A goes stale (by design)
            head_b.next.value = 0  # must NOT be dropped
            assert eb.run(head_b) is False, (
                "tenant B must see its own mutation despite A's fault plan"
            )
            assert ea.run(head_a) is True, (
                "sanity: the fault did bite tenant A (stale answer)"
            )
        assert injector.writes_dropped >= 1
        assert eb.tracking.write_log.fault_hook is None
    finally:
        ea.close()
        eb.close()


def test_monitored_fields_are_scoped_per_state():
    """Monitoring fields for one domain must not enable logging in
    another domain that never registered them."""
    state_a = TrackingState()
    state_b = TrackingState()
    state_a.monitor_fields(["value", "next"])
    assert "value" in state_a.monitored
    assert "value" not in state_b.monitored
    state_a.unmonitor_fields(["value", "next"])
    assert "value" not in state_a.monitored


def test_adoption_conflict_raises_tenant_isolation_error():
    """One live structure read by engines in two different domains is an
    isolation breach and must be refused loudly."""
    ea, eb = two_isolated_engines()
    try:
        head = build(1, 2, 3)
        assert ea.run(head) is True  # A adopts the nodes
        with pytest.raises(TenantIsolationError):
            eb.run(head)
    finally:
        ea.close()
        eb.close()


def test_released_structure_can_be_readopted():
    """Adoption is about *live* references: once the owning engine closes
    (releasing its refcounts), another domain may adopt the structure."""
    ea, eb = two_isolated_engines()
    head = build(1, 2, 3)
    try:
        assert ea.run(head) is True
    finally:
        ea.close()  # releases every reference into the nodes
    try:
        assert eb.run(head) is True
    finally:
        eb.close()


def test_engines_sharing_one_state_share_structures_freely():
    """Engines bound to the *same* domain (the pre-pool idiom, and the
    QA oracle's scratch/ditto/naive trio) still share structures."""
    state = TrackingState()
    ea = DittoEngine(iso_ordered, tracking=state)
    eb = DittoEngine(iso_ordered, tracking=state)
    try:
        head = build(1, 2, 3)
        assert ea.run(head) is True
        assert eb.run(head) is True
        head.next.value = 0
        assert ea.run(head) is False
        assert eb.run(head) is False
    finally:
        ea.close()
        eb.close()


def test_adopt_container_is_idempotent_and_duck_typed():
    state = TrackingState()
    node = Node(1)
    adopt_container(node, state)
    adopt_container(node, state)  # idempotent
    assert node._ditto_state is state
    adopt_container(object(), state)  # non-tracked: silently ignored
