"""engine.validate() must actually detect broken graphs — corrupt the
bookkeeping deliberately and expect assertions."""

from __future__ import annotations

import pytest

from repro import TrackedObject, check


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def chain_len(e):
    if e is None:
        return 0
    return 1 + chain_len(e.next)


def _engine_with_chain(engine_factory, n=4):
    engine = engine_factory(chain_len)
    head = None
    for _ in range(n):
        head = Elem(0, head)
    assert engine.run(head) == n
    return engine


class TestValidateDetects:
    def test_clean_graph_passes(self, engine_factory):
        engine = _engine_with_chain(engine_factory)
        engine.validate()

    def test_dirty_leftover(self, engine_factory):
        engine = _engine_with_chain(engine_factory)
        next(iter(engine.table)).dirty = True
        with pytest.raises(AssertionError, match="dirty"):
            engine.validate()

    def test_failed_leftover(self, engine_factory):
        engine = _engine_with_chain(engine_factory)
        next(iter(engine.table)).failed = True
        with pytest.raises(AssertionError, match="failed"):
            engine.validate()

    def test_missing_reverse_map_entry(self, engine_factory):
        engine = _engine_with_chain(engine_factory)
        node = next(n for n in engine.table if n.implicits)
        location = next(iter(node.implicits))
        engine.table._reverse[location].discard(node)
        with pytest.raises(AssertionError, match="reverse map"):
            engine.validate()

    def test_edge_multiplicity_mismatch(self, engine_factory):
        engine = _engine_with_chain(engine_factory)
        node = next(n for n in engine.table if n.calls)
        child = node.calls[0]
        child.callers[node] += 1
        with pytest.raises(AssertionError, match="multiplicity"):
            engine.validate()

    def test_unreachable_node(self, engine_factory):
        engine = _engine_with_chain(engine_factory)
        node = next(
            n for n in engine.table
            if n is not engine._root and n.caller_count() > 0
        )
        node.callers.clear()
        with pytest.raises(AssertionError, match="unreachable|multiplicity"):
            engine.validate()

    def test_lost_order_record(self, engine_factory):
        engine = _engine_with_chain(engine_factory)
        node = next(iter(engine.table))
        engine.order.delete(node.order_rec)
        with pytest.raises(AssertionError, match="order record"):
            engine.validate()

    def test_unanchored_root(self, engine_factory):
        engine = _engine_with_chain(engine_factory)
        engine._root.callers.pop(engine._anchor)
        with pytest.raises(AssertionError, match="anchored"):
            engine.validate()
