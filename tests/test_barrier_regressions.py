"""Engine-driven regressions for the confirmed TrackedList barrier bugs.

Each test here encodes a *pre-fix failure*: before the barrier overhaul,
``TrackedList.insert(i, v)`` with ``i > len`` logged an empty slot range
(so the appended slot's reader went stale), failed mutations logged
phantom locations before raising, and the runtime normalized negative
reads without recording the length dependency they embody.  The tests
drive real engines to the formerly-stale results and cross-check the
three execution modes through the differential oracle.
"""

from __future__ import annotations

import pytest

from repro import DittoEngine, TrackedList, check, tracking_state
from repro.core.locations import LengthLocation
from repro.qa import CHECK_OP, Op, Oracle, Trace


@check
def tail_value(v):
    """Reads only ``v[-1]`` — its sole length dependency is the implicit
    one the runtime records while normalizing the negative index."""
    return v[-1]


class TestInsertClampStaleness:
    def test_out_of_range_insert_dirties_tail_reader(self, engine_factory):
        """Pre-fix: ``insert(99, ...)`` logged only ``<len>`` (the slot
        range ``range(99, n+1)`` was empty) while ``list.insert`` clamped
        and wrote slot ``n`` — so the engine kept serving the old tail."""
        lst = TrackedList([1, 2, 3])
        engine = engine_factory(tail_value)
        assert engine.run(lst) == 3
        lst.insert(99, -7)
        assert list(lst) == [1, 2, 3, -7]
        assert engine.run(lst) == tail_value(lst) == -7

    def test_far_negative_insert_dirties_head_reader(self, engine_factory):
        @check
        def head_value(v):
            return v[0]

        lst = TrackedList([5, 6])
        engine = engine_factory(head_value)
        assert engine.run(lst) == 5
        lst.insert(-99, 4)  # clamps to 0, writes the head
        assert engine.run(lst) == head_value(lst) == 4

    def test_append_dirties_negative_tail_reader(self, engine_factory):
        """Growth retargets ``v[-1]`` without writing the old tail slot;
        only the length dependency recorded during negative-index
        normalization makes the reader re-run."""
        lst = TrackedList([10, 20])
        engine = engine_factory(tail_value)
        assert engine.run(lst) == 20
        lst.append(30)
        assert engine.run(lst) == 30

    def test_negative_read_records_length_implicit(self, engine_factory):
        lst = TrackedList([1, 2])
        engine = engine_factory(tail_value)
        engine.run(lst)
        implicits = set()
        for node in engine.table:
            implicits |= node.implicits
        assert LengthLocation(lst) in implicits


class TestFailedMutationsThroughEngine:
    def test_raising_pop_causes_no_spurious_repair(self, engine_factory):
        """A failed mutation must not dirty anything: the next run after a
        raising ``pop`` is a no-op repair, not a phantom re-execution."""
        lst = TrackedList([1, 2, 3])
        engine = engine_factory(tail_value)
        engine.run(lst)
        with pytest.raises(IndexError):
            lst.pop(17)
        with pytest.raises(IndexError):
            lst.pop(-9)
        before = engine.stats.execs
        assert engine.run(lst) == 3
        assert engine.stats.execs == before
        assert engine.stats.dirty_marked == 0

    def test_pop_on_empty_logs_nothing_for_engine(self, engine_factory):
        empty = TrackedList([])
        engine = engine_factory(tail_value)
        with pytest.raises(IndexError):
            engine.run(empty)  # builds the (raising) graph, refcounts > 0
        with pytest.raises(IndexError):
            empty.pop()
        assert tracking_state().write_log.peek(engine._log_cid) == []


class TestModesAgreeOnRepro:
    def test_oracle_agrees_on_clamped_and_failing_ops(self):
        """The exact op shapes of both confirmed bugs, replayed through
        scratch/ditto/naive on a shared heap: out-of-range inserts (clamp
        both ways), out-of-range and empty pops (validated, absorbed by
        the model), plus interleaved checks."""
        trace = Trace(
            "int_vector",
            0,
            [
                Op("pop", (0,)),  # pop on empty: raises, absorbed, no log
                Op("append", (3,)),
                Op("append", (5,)),
                CHECK_OP,
                Op("insert", (99, -7)),  # clamps to tail
                CHECK_OP,
                Op("insert", (-99, 11)),  # clamps to head
                CHECK_OP,
                Op("pop", (42,)),  # out of range: raises, absorbed
                Op("pop", (-1,)),  # valid tail pop
                CHECK_OP,
                Op("corrupt", (1, 8)),
                CHECK_OP,
            ],
        )
        report = Oracle("int_vector", validate=True).run(trace)
        assert report.ok, "\n".join(str(d) for d in report.divergences)
        assert report.checks_run == 6  # 5 explicit + the implicit final
        assert report.audit_findings == {"ditto": [], "naive": []}


class TestBarrierCounters:
    def test_counters_flow_through_metrics_bridge(self):
        from repro.obs import EngineMetrics

        lst = TrackedList(range(50))
        engine = DittoEngine(tail_value)
        try:
            metrics = EngineMetrics(engine)
            engine.run(lst)
            lst.insert(0, -1)  # coalesced range over 51 slots
            engine.run(lst)
            metrics.refresh()
            snap = metrics.registry.snapshot()
            state = tracking_state()
            assert snap["ditto_barrier_logged_total"] == state.write_log.logged
            assert snap["ditto_barrier_logged_total"] >= 2
            assert (
                snap["ditto_barrier_coalesced_total"]
                == state.write_log.coalesced
                == 51
            )
            assert (
                snap["ditto_barrier_filtered_total"] == state.barrier_filtered
            )
        finally:
            engine.close()

    def test_filtered_counter_counts_unmonitored_writes(self):
        from repro import TrackedObject

        class Box(TrackedObject):
            pass

        box = Box()
        box._ditto_incref()
        tracking_state().monitor_fields(["seen"])
        before = tracking_state().barrier_filtered
        box.ignored = 1  # referenced container, unmonitored field
        assert tracking_state().barrier_filtered == before + 1
        box.seen = 2  # monitored: logged, not filtered
        assert tracking_state().barrier_filtered == before + 1

    def test_drain_instant_carries_counters(self, engine_factory):
        from repro.obs import RingBufferSink

        sink = RingBufferSink()
        lst = TrackedList([1, 2])
        engine = engine_factory(tail_value, trace_sink=sink)
        engine.run(lst)
        lst.insert(0, 0)
        engine.run(lst)
        instants = sink.instants("barrier_drain")
        assert instants
        args = instants[-1].args
        for key in (
            "barrier_logged",
            "barrier_filtered",
            "barrier_coalesced",
            "pending",
            "dirtied",
        ):
            assert key in args
        assert args["pending"] >= 2
