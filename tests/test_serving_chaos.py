"""Chaos campaign: faulted tenants never perturb their neighbours.

Runs the seeded fault-injection harness end-to-end and asserts the
acceptance envelope from the serving-layer work: >=1 faulted tenant per
round across >=200 rounds, every un-faulted tenant byte-identical to the
solo-engine oracle, and no deadline overrun past 2x its budget.
"""

from __future__ import annotations

import json

import pytest

from repro.serving import ChaosConfig, ChaosResult, run_chaos
from repro.serving.chaos import FAULT_KINDS

pytestmark = pytest.mark.serving


def test_chaos_campaign_200_rounds_no_cross_tenant_divergence():
    config = ChaosConfig(tenants=8, rounds=200, seed=0)
    res = run_chaos(config)
    assert isinstance(res, ChaosResult)
    assert res.rounds == 200
    assert res.ok, res.summary()
    assert not res.divergences, res.divergences[:3]
    # >=1 faulted tenant per round, and every fault kind actually fired.
    assert res.total_faults >= res.rounds
    assert set(res.faults_injected) == set(FAULT_KINDS)
    assert all(n > 0 for n in res.faults_injected.values())
    # Deadline contract: even the blown-budget rounds stayed under 2x.
    assert res.deadline_calls > 0
    assert res.max_overrun_ratio <= 2.0
    # Victims were designated up front; the clean cohort is non-empty.
    assert res.victims and res.clean
    assert not (set(res.victims) & set(res.clean))


def test_chaos_is_deterministic_per_seed():
    a = run_chaos(ChaosConfig(tenants=6, rounds=30, seed=7))
    b = run_chaos(ChaosConfig(tenants=6, rounds=30, seed=7))
    assert a.faults_injected == b.faults_injected
    assert a.status_counts == b.status_counts
    assert a.victims == b.victims
    c = run_chaos(ChaosConfig(tenants=6, rounds=30, seed=8))
    assert (
        c.faults_injected != a.faults_injected
        or c.victims != a.victims
        or c.status_counts != a.status_counts
    ), "different seeds should explore different fault schedules"


def test_chaos_result_to_json_is_a_ci_artifact():
    res = run_chaos(ChaosConfig(tenants=6, rounds=20, seed=3))
    blob = res.to_json()
    for key in (
        "rounds", "victims", "faults_injected", "status_counts",
        "divergences", "max_overrun_ratio", "deadline_calls", "ok",
    ):
        assert key in blob, key
    assert blob["ok"] is True
    assert blob["divergences"] == []
    # The artifact must be serializable as-is (CI uploads it on failure).
    assert json.loads(json.dumps(blob)) == blob
