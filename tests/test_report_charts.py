"""ASCII chart rendering (the terminal version of the paper's figures)."""

from __future__ import annotations

import pytest

from repro.bench.report import ascii_chart, figure11_chart
from repro.bench.runner import SweepRow


class TestAsciiChart:
    def test_marks_and_legend(self):
        out = ascii_chart(
            "t", [1, 2, 3], {"full": [1.0, 2.0, 3.0], "ditto": [1.0, 1.0, 1.0]}
        )
        assert out.startswith("t\n")
        assert "F = full" in out and "D = ditto" in out
        assert "F" in out and "D" in out

    def test_overlap_marked_with_star(self):
        out = ascii_chart("t", [1, 2], {"aa": [5.0, 1.0], "bb": [5.0, 2.0]})
        assert "*" in out  # both series share the point at x=1

    def test_axis_labels(self):
        out = ascii_chart("t", [10, 20], {"s": [0.5, 4.5]})
        assert "4.5" in out
        assert "0.5" in out
        assert "10" in out and "20" in out

    def test_flat_series_does_not_divide_by_zero(self):
        out = ascii_chart("t", [1, 2], {"s": [3.0, 3.0]})
        assert "S" in out

    def test_empty_inputs(self):
        assert "<no data>" in ascii_chart("t", [], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("t", [1, 2], {"s": [1.0]})

    def test_height_respected(self):
        out = ascii_chart("t", [1, 2], {"s": [0.0, 1.0]}, height=5)
        rows = [line for line in out.splitlines() if "|" in line]
        assert len(rows) == 5


class TestFigure11Chart:
    def test_renders_three_curves(self):
        rows = [
            SweepRow(size=50, none_s=0.01, full_s=0.1, ditto_s=0.05,
                     speedup=2.0),
            SweepRow(size=100, none_s=0.02, full_s=0.4, ditto_s=0.08,
                     speedup=5.0),
        ]
        out = figure11_chart("panel", rows)
        assert "N = none" in out
        assert "50" in out and "100" in out
