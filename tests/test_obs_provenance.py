"""Repair provenance: enable/disable, recorded chain, text/DOT rendering."""

from __future__ import annotations

import pytest

from repro import TrackedObject, check
from repro.obs import (
    disable_provenance,
    enable_provenance,
    explain_last_run,
)
from repro.obs.provenance import _dot_escape


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def prov_len(e):
    if e is None:
        return 0
    return 1 + prov_len(e.next)


def _chain(n):
    head = None
    for v in range(n, 0, -1):
        head = Elem(v, head)
    return head


class TestLifecycle:
    def test_explain_requires_enable(self, engine_factory):
        engine = engine_factory(prov_len)
        engine.run(_chain(3))
        with pytest.raises(ValueError, match="enable_provenance"):
            explain_last_run(engine)

    def test_explain_requires_a_recorded_run(self, engine_factory):
        engine = engine_factory(prov_len)
        enable_provenance(engine)
        with pytest.raises(ValueError, match="no recorded run"):
            explain_last_run(engine)

    def test_enable_is_idempotent(self, engine_factory):
        engine = engine_factory(prov_len)
        recorder = enable_provenance(engine)
        assert enable_provenance(engine) is recorder

    def test_disable_detaches(self, engine_factory):
        engine = engine_factory(prov_len)
        enable_provenance(engine)
        engine.run(_chain(3))
        disable_provenance(engine)
        assert engine.recorder is None
        with pytest.raises(ValueError):
            explain_last_run(engine)


class TestRecordedChain:
    def test_initial_run_recorded(self, engine_factory):
        engine = engine_factory(prov_len)
        enable_provenance(engine)
        engine.run(_chain(3))
        explanation = explain_last_run(engine)
        record = explanation.record
        assert record.incremental is False
        assert record.mutated == []
        assert record.aborted is False
        assert record.duration > 0
        # Graph build executes one node per element (the None call is
        # leaf-inlined) in the exec phase.
        assert len(record.executed) == 3
        assert all(phase == "exec" for _, phase in record.executed)
        assert "initial (graph build)" in explanation.text()

    def test_mutation_chain(self, engine_factory):
        engine = engine_factory(prov_len)
        enable_provenance(engine)
        head = _chain(6)
        engine.run(head)
        head.next.next = Elem(99, head.next.next)  # splice after 2nd elem
        engine.run(head)
        record = explain_last_run(engine).record
        assert record.incremental is True
        assert record.mutated, "the splice must appear as a mutation"
        # Each mutated location maps to the node(s) it dirtied.
        dirtied = [n for labels in record.dirtied.values() for n in labels]
        assert any("prov_len" in label for label in dirtied)
        # The splice re-executes the dirty node, the new node, and the
        # ancestors whose return values changed (propagate phase).
        phases = {phase for _, phase in record.executed}
        assert "exec" in phases
        assert "propagate" in phases

    def test_prune_recorded(self, engine_factory):
        engine = engine_factory(prov_len)
        enable_provenance(engine)
        head = _chain(6)
        engine.run(head)
        head.next.next = None  # drop a 4-node suffix
        engine.run(head)
        record = explain_last_run(engine).record
        assert len(record.pruned) == 4
        assert all("prov_len" in label for label in record.pruned)

    def test_phase_times_recorded(self, engine_factory):
        engine = engine_factory(prov_len)
        enable_provenance(engine)
        head = _chain(4)
        engine.run(head)
        head.next.next = None
        engine.run(head)
        record = explain_last_run(engine).record
        assert "exec" in record.phase_times
        assert all(v >= 0 for v in record.phase_times.values())


class TestRendering:
    def _explained(self, engine_factory):
        engine = engine_factory(prov_len)
        enable_provenance(engine)
        head = _chain(6)
        engine.run(head)
        head.next.next = Elem(99, head.next.next)
        engine.run(head)
        return explain_last_run(engine)

    def test_text_sections(self, engine_factory):
        text = self._explained(engine_factory).text()
        assert "incremental" in text
        assert "mutated" in text
        assert "dirtied" in text
        assert "re-executed" in text
        assert "[exec]" in text
        assert "phases:" in text
        assert str(self._explained(engine_factory))  # __str__ delegates

    def test_dot_structure(self, engine_factory):
        dot = self._explained(engine_factory).dot()
        assert dot.startswith("digraph provenance {")
        assert dot.rstrip().endswith("}")
        assert 'label="dirtied"' in dot  # location -> node edge
        assert 'color="orange"' in dot  # mutated location
        assert 'color="red"' in dot  # re-executed node
        # Propagation ancestors hang off the dashed phase marker.
        assert "propagate phase" in dot
        assert "style=dashed" in dot

    def test_no_mutation_run(self, engine_factory):
        engine = engine_factory(prov_len)
        enable_provenance(engine)
        head = _chain(3)
        engine.run(head)
        engine.run(head)  # nothing changed in between
        explanation = explain_last_run(engine)
        assert explanation.record.incremental is True
        assert "no mutations since the previous run" in explanation.text()


@check
def prov_tagged(e, tag):
    if e is None:
        return len(tag)
    return 1 + prov_tagged(e.next, tag)


class TestDotEscaping:
    """Regression: labels carry ``repr``'d check arguments, and a string
    argument with a quote or newline used to truncate the DOT ``label``
    attribute mid-string."""

    def test_escape_rules(self):
        assert _dot_escape('a"b') == 'a\\"b'
        assert _dot_escape("a\nb") == "a\\nb"
        assert _dot_escape("a\r\nb") == "a\\nb"
        # Backslashes are escaped *first*, so a literal two-character
        # "\n" sequence survives as text instead of becoming a break.
        assert _dot_escape("a\\nb") == "a\\\\nb"
        assert _dot_escape('say "hi"\nbye') == 'say \\"hi\\"\\nbye'

    def test_dot_with_quote_and_newline_in_string_arg(
        self, engine_factory
    ):
        engine = engine_factory(prov_tagged)
        enable_provenance(engine)
        engine.run(_chain(2), 'he said "hi"\nbye')
        dot = explain_last_run(engine).dot()
        # The quotes inside the repr'd argument are escaped...
        assert '\\"hi\\"' in dot
        # ...and every line is a complete statement: no raw quote ends a
        # label early (an even count of unescaped quotes per line).
        for line in dot.splitlines():
            unescaped = line.replace('\\"', "")
            assert unescaped.count('"') % 2 == 0, line
