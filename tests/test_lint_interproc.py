"""Live-mode interprocedural admissibility: ``build_plan``, the engine's
``lint=`` modes, per-check monitored-field tightening, helper read
attribution at runtime, and verified-helper trust under strict mode."""

from __future__ import annotations

import pytest

from repro import (
    CheckRestrictionError,
    DittoEngine,
    TrackedObject,
    check,
    register_pure_helper,
    tracking_state,
)
from repro.core.errors import TrackingError
from repro.lint import EntryPlan, build_plan


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


class Labeled(TrackedObject):
    def __init__(self, label, weight):
        self.label = label
        self.weight = weight


# Helpers under test (module level so inspect.getsource works). ---------------


def depth1_reader(e):
    return e.value >= 0


def len_reader(e):
    return e.value


def impure_toucher(e):
    e.value = e.value + 1
    return e.value


def deep_reader(e):
    return e.next.value


@check
def uses_depth1(e):
    if e is None:
        return True
    if not depth1_reader(e):
        return False
    return uses_depth1(e.next)


@check
def uses_impure(e):
    return e is None or impure_toucher(e) > 0


@check
def uses_deep(e):
    return e is None or deep_reader(e) >= 0


@check
def reads_labels(r):
    return r is None or r.label is not None


# build_plan. ------------------------------------------------------------------


def test_plan_shape_and_clean_entry():
    plan = build_plan(uses_depth1)
    assert isinstance(plan, EntryPlan)
    assert plan.ok
    assert plan.report().exit_code() == 0
    # The helper's depth-1 read is coverable: it appears in the summary
    # and the helper is statically verified.
    assert depth1_reader in plan.helper_summaries
    summary = plan.helper_summaries[depth1_reader]
    assert summary.arg_fields_read == {0: {"value"}}
    assert depth1_reader in plan.verified_helpers


def test_plan_monitored_fields_are_per_entry():
    plan_list = build_plan(uses_depth1)
    plan_label = build_plan(reads_labels)
    assert "value" in plan_list.monitored_fields
    assert "next" in plan_list.monitored_fields
    assert "label" not in plan_list.monitored_fields
    assert plan_label.monitored_fields == frozenset({"label"})


def test_plan_flags_impure_helper():
    plan = build_plan(uses_impure)
    assert not plan.ok
    codes = plan.report().codes()
    assert "DIT001" in codes
    assert impure_toucher not in plan.verified_helpers


def test_plan_flags_deep_helper():
    plan = build_plan(uses_deep)
    assert "DIT003" in plan.report().codes()
    assert deep_reader not in plan.verified_helpers


# Engine integration. ----------------------------------------------------------


def test_engine_monitors_only_its_entry_fields(engine_factory):
    engine = engine_factory(reads_labels)
    assert engine.monitored_fields == frozenset({"label"})
    state = tracking_state()
    head = Labeled("a", 1)
    before = state.barrier_counters()["barrier_logged"]
    head.weight = 2  # not monitored by this entry: filtered
    assert state.barrier_counters()["barrier_logged"] == before
    engine.run(head)
    head.label = "b"  # monitored and live: logged
    assert state.barrier_counters()["barrier_logged"] == before + 1


def test_engine_lint_off_builds_plan_silently(engine_factory):
    engine = engine_factory(uses_impure)
    assert engine.stats.lint_runs == 0
    assert engine.plan is not None and not engine.plan.ok


def test_engine_lint_warn_counts_findings(engine_factory):
    engine = engine_factory(uses_impure, lint="warn")
    assert engine.stats.lint_runs == 1
    assert engine.stats.lint_errors >= 1


def test_engine_lint_strict_rejects_errors():
    with pytest.raises(CheckRestrictionError):
        DittoEngine(uses_impure, lint="strict")


def test_engine_lint_strict_accepts_clean_entry(engine_factory):
    engine = engine_factory(uses_depth1, lint="strict")
    assert engine.stats.lint_errors == 0
    head = Elem(1, Elem(2))
    assert engine.run(head) is True


def test_engine_rejects_bad_lint_mode():
    with pytest.raises(ValueError):
        DittoEngine(uses_depth1, lint="pedantic")


def test_engine_lint_method_counts_and_reports(engine_factory):
    engine = engine_factory(uses_impure)
    report = engine.lint()
    assert "DIT001" in report.codes()
    assert engine.stats.lint_runs == 1
    assert engine.stats.lint_errors == len(report.errors)
    report2 = engine.lint()
    assert engine.stats.lint_runs == 2
    assert report2.codes() == report.codes()


# Runtime attribution of helper reads. -----------------------------------------


def test_helper_depth1_read_attributed_as_implicit(engine_factory):
    """The engine must re-execute when a field only the *helper* reads
    changes — the lint summary makes the helper's read an implicit
    argument of the calling node."""
    engine = engine_factory(uses_depth1, lint="strict")
    head = Elem(1, Elem(2, Elem(3)))
    assert engine.run(head) is True
    head.next.value = -5  # read by depth1_reader, not by the check body
    assert engine.run(head) is False
    head.next.value = 2
    assert engine.run(head) is True


def test_verified_helper_trusted_only_under_strict_lint(engine_factory):
    # strict runtime + lint off: unregistered helper is rejected.
    engine = engine_factory(uses_depth1, strict=True)
    with pytest.raises(TrackingError):
        engine.run(Elem(1))
    # strict runtime + lint strict: the statically-verified helper passes.
    engine2 = engine_factory(uses_depth1, strict=True, lint="strict")
    assert engine2.run(Elem(1, Elem(2))) is True


def test_registered_helper_still_trusted(engine_factory):
    register_pure_helper(depth1_reader)
    try:
        engine = engine_factory(uses_depth1, strict=True)
        assert engine.run(Elem(1)) is True
    finally:
        from repro.instrument.transform import _PURE_HELPERS

        _PURE_HELPERS.discard(depth1_reader)


# Registration-time satellites (analysis.py). ----------------------------------


def test_methods_called_recorded_in_analysis():
    @check
    def calls_method(x):
        return x is None or x.digest() >= 0

    analysis = calls_method.analysis()
    assert analysis.methods_called == {"digest"}


def test_mutable_global_rejected_at_registration():
    bad_global = [1, 2, 3]

    with pytest.raises(CheckRestrictionError) as exc_info:
        @check
        def reads_mutable(x):
            return x is None or x.value == bad_global[0]

        reads_mutable.analysis()
    assert "mutable" in str(exc_info.value)


def test_closure_cell_immutable_global_accepted():
    limit = 10

    @check
    def reads_cell(x):
        return x is None or x.value <= limit

    assert reads_cell.analysis().ok


def test_tracked_sentinel_global_accepted():
    nil = Elem(0)

    @check
    def reads_sentinel(x):
        if x is nil:
            return True
        return x is None or x.value >= 0

    assert reads_sentinel.analysis().ok


def test_unresolved_global_assumed_late_bound():
    @check
    def reads_late(x):
        return x is None or x.value <= LATE_CONSTANT  # noqa: F821

    assert reads_late.analysis().ok
