"""InvariantGuard / @guarded: the paper's method-entry/exit checking."""

from __future__ import annotations

import pytest

from repro import (
    InvariantGuard,
    InvariantViolation,
    TrackedObject,
    check,
    guarded,
)


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def guard_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return guard_ordered(e.next)


@check
def guard_depth(e):
    """Integer check with -1 as the failure code (checkBlackDepth style)."""
    if e is None:
        return 0
    if e.value < 0:
        return -1
    d = guard_depth(e.next)
    if d == -1:
        return -1
    return d + 1


def build(*values):
    head = None
    for v in reversed(values):
        head = Elem(v, head)
    return head


class TestInvariantGuard:
    def test_check_passes(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2, 3)
            assert guard.check(head) is True
            assert guard.checks_run == 1

    def test_check_raises_on_violation(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(3, 1)
            with pytest.raises(InvariantViolation) as exc_info:
                guard.check(head)
            assert exc_info.value.check_name == "guard_ordered"
            assert exc_info.value.result is False

    def test_record_mode_collects(self):
        with InvariantGuard(guard_ordered, on_violation="record") as guard:
            head = build(3, 1)
            assert guard.check(head) is False
            assert len(guard.violations) == 1

    def test_minus_one_is_failure(self):
        with InvariantGuard(guard_depth) as guard:
            assert guard.check(build(1, 2)) == 2
            with pytest.raises(InvariantViolation):
                guard.check(build(1, -5))

    def test_custom_failure_predicate(self):
        with InvariantGuard(
            guard_depth, failed=lambda r: r != 2
        ) as guard:
            assert guard.check(build(1, 2)) == 2
            with pytest.raises(InvariantViolation):
                guard.check(build(1, 2, 3))

    def test_guarding_block_checks_entry_and_exit(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2, 3)
            with guard.guarding(head):
                head.next.value = 2  # stays ordered
            assert guard.checks_run == 2

    def test_guarding_block_catches_exit_violation(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2, 3)
            with pytest.raises(InvariantViolation) as exc_info:
                with guard.guarding(head):
                    head.next.value = 0  # 1 > 0: broken at exit
            assert "exit" in exc_info.value.moment

    def test_guarding_block_catches_entry_violation(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2)
            head.value = 9  # broken from outside, before the block
            with pytest.raises(InvariantViolation) as exc_info:
                with guard.guarding(head):
                    pass
            assert "entry" in exc_info.value.moment

    def test_body_exception_not_masked(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2)
            with pytest.raises(RuntimeError):
                with guard.guarding(head):
                    raise RuntimeError("body bug")

    def test_rejects_bad_on_violation(self):
        with pytest.raises(ValueError):
            InvariantGuard(guard_ordered, on_violation="explode")

    def test_guard_is_incremental(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(*range(100))
            guard.check(head)
            before = guard.engine.stats.execs
            head.next.value = 1  # tiny local change
            guard.check(head)
            assert guard.engine.stats.execs - before <= 3


class TestGuardedDecorator:
    def test_methods_checked_both_ends(self):
        @check
        def positive_values(e):
            if e is None:
                return True
            if e.value <= 0:
                return False
            return positive_values(e.next)

        class Stack(TrackedObject):
            def __init__(self):
                self.head = None

            @guarded(positive_values, args=lambda self: (self.head,))
            def push(self, value):
                self.head = Elem(value, self.head)

            @guarded(positive_values, args=lambda self: (self.head,))
            def push_buggy(self, value):
                self.head = Elem(-value, self.head)  # forgets to validate

        s = Stack()
        s.push(1)
        s.push(2)
        with pytest.raises(InvariantViolation) as exc_info:
            s.push_buggy(3)
        assert "exit of push_buggy" in exc_info.value.moment
        # The guard is shared per class, graph warm across calls.
        guard = type(s)._ditto_guard_positive_values
        assert guard.checks_run >= 5
        guard.close()

    def test_outside_modification_caught_at_entry(self):
        @check
        def never_empty(s):
            return s.head is not None

        class Box(TrackedObject):
            def __init__(self):
                self.head = Elem(1)

            @guarded(never_empty)
            def touch(self):
                pass

        b = Box()
        b.touch()
        b.head = None  # an outsider breaks the invariant
        with pytest.raises(InvariantViolation) as exc_info:
            b.touch()
        assert "entry of touch" in exc_info.value.moment
        type(b)._ditto_guard_never_empty.close()
