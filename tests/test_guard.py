"""InvariantGuard / @guarded: the paper's method-entry/exit checking."""

from __future__ import annotations

import logging

import pytest

from repro import (
    InvariantGuard,
    InvariantViolation,
    TrackedObject,
    check,
    guarded,
)
from repro.guard import _failed


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def guard_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return guard_ordered(e.next)


@check
def guard_depth(e):
    """Integer check with -1 as the failure code (checkBlackDepth style)."""
    if e is None:
        return 0
    if e.value < 0:
        return -1
    d = guard_depth(e.next)
    if d == -1:
        return -1
    return d + 1


def build(*values):
    head = None
    for v in reversed(values):
        head = Elem(v, head)
    return head


class TestFailedPredicate:
    """``_failed`` draws a strict boolean/int boundary: False and the
    exact int -1 fail; every numeric lookalike passes."""

    @pytest.mark.parametrize("result", [False, -1])
    def test_failures(self, result):
        assert _failed(result)

    @pytest.mark.parametrize(
        "result",
        [
            True,        # == 1 but a bool, not a failing int
            0,
            1,
            -2,
            -1.0,        # float lookalike of the error code
            None,        # falsy but not a failure signal
            "",
            [],
            "ok",
        ],
    )
    def test_non_failures(self, result):
        assert not _failed(result)

    def test_bool_subclass_boundary(self):
        # bool is an int subclass: True == 1 and (True - 2) == -1, yet
        # neither may be classified by int semantics.
        assert not _failed(True)
        assert _failed(True - 2)  # a real int -1, produced via bool math

    def test_int_subclass_is_not_a_failure(self):
        class Code(int):
            pass

        assert not _failed(Code(-1))


class TestInvariantGuard:
    def test_check_passes(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2, 3)
            assert guard.check(head) is True
            assert guard.checks_run == 1

    def test_check_raises_on_violation(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(3, 1)
            with pytest.raises(InvariantViolation) as exc_info:
                guard.check(head)
            assert exc_info.value.check_name == "guard_ordered"
            assert exc_info.value.result is False

    def test_record_mode_collects(self):
        with InvariantGuard(guard_ordered, on_violation="record") as guard:
            head = build(3, 1)
            assert guard.check(head) is False
            assert len(guard.violations) == 1

    def test_minus_one_is_failure(self):
        with InvariantGuard(guard_depth) as guard:
            assert guard.check(build(1, 2)) == 2
            with pytest.raises(InvariantViolation):
                guard.check(build(1, -5))

    def test_custom_failure_predicate(self):
        with InvariantGuard(
            guard_depth, failed=lambda r: r != 2
        ) as guard:
            assert guard.check(build(1, 2)) == 2
            with pytest.raises(InvariantViolation):
                guard.check(build(1, 2, 3))

    def test_guarding_block_checks_entry_and_exit(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2, 3)
            with guard.guarding(head):
                head.next.value = 2  # stays ordered
            assert guard.checks_run == 2

    def test_guarding_block_catches_exit_violation(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2, 3)
            with pytest.raises(InvariantViolation) as exc_info:
                with guard.guarding(head):
                    head.next.value = 0  # 1 > 0: broken at exit
            assert "exit" in exc_info.value.moment

    def test_guarding_block_catches_entry_violation(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2)
            head.value = 9  # broken from outside, before the block
            with pytest.raises(InvariantViolation) as exc_info:
                with guard.guarding(head):
                    pass
            assert "entry" in exc_info.value.moment

    def test_body_exception_not_masked(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2)
            with pytest.raises(RuntimeError):
                with guard.guarding(head):
                    raise RuntimeError("body bug")

    def test_body_exception_captures_pending_writes(self, caplog):
        """When the body raises, the exit check is skipped — but the
        mutations it would have examined are preserved as a diagnostic
        and logged, so the evidence is not silently lost."""
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2, 3)
            with caplog.at_level(logging.WARNING, logger="repro.guard"):
                with pytest.raises(RuntimeError):
                    with guard.guarding(head):
                        head.next.value = 99  # breaks the order...
                        raise RuntimeError("crashed before exit check")
            assert len(guard.diagnostics) == 1
            assert "pending write" in guard.diagnostics[0]
            assert "value" in guard.diagnostics[0]
            assert any(
                "exit check skipped" in r.getMessage()
                for r in caplog.records
            )
            # The write stays pending: the next check still sees it.
            with pytest.raises(InvariantViolation):
                guard.check(head)

    def test_body_exception_with_no_writes(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(1, 2)
            with pytest.raises(RuntimeError):
                with guard.guarding(head):
                    raise RuntimeError("no mutations happened")
            assert guard.diagnostics == ["<no pending writes>"]

    def test_guard_forwards_resilience_options(self):
        from repro import DegradationPolicy

        with InvariantGuard(
            guard_ordered,
            paranoia=1,
            degradation=DegradationPolicy(),
        ) as guard:
            assert guard.engine.paranoia == 1
            assert guard.engine.degradation is not None
            head = build(1, 2, 3)
            assert guard.check(head) is True
            assert guard.engine.stats.audits == 1
            assert guard.engine.stats.verify_checks == 1

    def test_rejects_bad_on_violation(self):
        with pytest.raises(ValueError):
            InvariantGuard(guard_ordered, on_violation="explode")

    def test_guard_is_incremental(self):
        with InvariantGuard(guard_ordered) as guard:
            head = build(*range(100))
            guard.check(head)
            before = guard.engine.stats.execs
            head.next.value = 1  # tiny local change
            guard.check(head)
            assert guard.engine.stats.execs - before <= 3


class TestGuardedDecorator:
    def test_methods_checked_both_ends(self):
        @check
        def positive_values(e):
            if e is None:
                return True
            if e.value <= 0:
                return False
            return positive_values(e.next)

        class Stack(TrackedObject):
            def __init__(self):
                self.head = None

            @guarded(positive_values, args=lambda self: (self.head,))
            def push(self, value):
                self.head = Elem(value, self.head)

            @guarded(positive_values, args=lambda self: (self.head,))
            def push_buggy(self, value):
                self.head = Elem(-value, self.head)  # forgets to validate

        s = Stack()
        s.push(1)
        s.push(2)
        with pytest.raises(InvariantViolation) as exc_info:
            s.push_buggy(3)
        assert "exit of push_buggy" in exc_info.value.moment
        # The guard is shared per class, graph warm across calls.
        guard = type(s)._ditto_guard_positive_values
        assert guard.checks_run >= 5
        guard.close()

    def test_subclass_gets_its_own_guard(self):
        """The lazy per-class guard must live on the *concrete* class.
        An MRO-walking lookup (plain getattr) would make the subclass
        reuse — and pollute — the base class's engine and graph."""

        @check
        def small_stack(s):
            n, e = 0, s.head
            while e is not None:
                n, e = n + 1, e.next
            return n <= 3

        class Stack(TrackedObject):
            def __init__(self):
                self.head = None

            @guarded(small_stack)
            def push(self, value):
                self.head = Elem(value, self.head)

        class AuditedStack(Stack):
            pass

        base, sub = Stack(), AuditedStack()
        base.push(1)
        sub.push(10)
        base_guard = vars(Stack)["_ditto_guard_small_stack"]
        sub_guard = vars(AuditedStack)["_ditto_guard_small_stack"]
        try:
            assert base_guard is not sub_guard
            assert base_guard.engine is not sub_guard.engine
            # Each class's guard only ever saw its own instances.
            assert base_guard.checks_run == 2
            assert sub_guard.checks_run == 2
        finally:
            base_guard.close()
            sub_guard.close()

    def test_outside_modification_caught_at_entry(self):
        @check
        def never_empty(s):
            return s.head is not None

        class Box(TrackedObject):
            def __init__(self):
                self.head = Elem(1)

            @guarded(never_empty)
            def touch(self):
                pass

        b = Box()
        b.touch()
        b.head = None  # an outsider breaks the invariant
        with pytest.raises(InvariantViolation) as exc_info:
            b.touch()
        assert "entry of touch" in exc_info.value.moment
        type(b)._ditto_guard_never_empty.close()
