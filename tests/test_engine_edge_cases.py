"""Engine edge cases: result types, empty structures, deep recursion,
tuple returns, UnknownCheckError, write-log hygiene, graph reuse limits."""

from __future__ import annotations

import pytest

from repro import (
    DittoEngine,
    TrackedArray,
    TrackedObject,
    UnknownCheckError,
    check,
    tracking_state,
)
from repro.bench.runner import run_with_big_stack


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


class TestResultTypes:
    def test_tuple_of_primitives_allowed(self, engine_factory):
        @check
        def min_max(e):
            if e is None:
                return (0, 0)
            rest = min_max(e.next)
            lo = e.value
            hi = e.value
            if e.next is not None:
                r0 = rest[0]
                r1 = rest[1]
                if r0 < lo:
                    lo = r0
                if r1 > hi:
                    hi = r1
            return (lo, hi)

        engine = engine_factory(min_max)
        head = Elem(3, Elem(1, Elem(7)))
        assert engine.run(head) == (1, 7)
        head.next.value = -2
        assert engine.run(head) == (-2, 7)

    def test_string_results(self, engine_factory):
        @check
        def first_word(e):
            if e is None:
                return ""
            return e.value

        engine = engine_factory(first_word)
        assert engine.run(Elem("hi")) == "hi"

    def test_none_result_allowed(self, engine_factory):
        @check
        def nothing(e):
            return None

        engine = engine_factory(nothing)
        assert engine.run(Elem(1)) is None

    def test_float_result(self, engine_factory):
        @check
        def ratio(e):
            if e is None:
                return 0.0
            return e.value / 2

        engine = engine_factory(ratio)
        assert engine.run(Elem(5)) == 2.5


class TestDeepStructures:
    def test_thousand_element_list(self, engine_factory):
        @check
        def deep_count(e):
            if e is None:
                return 0
            return 1 + deep_count(e.next)

        def build_and_run():
            head = None
            for _ in range(5000):
                head = Elem(0, head)
            engine = DittoEngine(deep_count)
            try:
                assert engine.run(head) == 5000
                head.next = None
                assert engine.run(head) == 1
            finally:
                engine.close()
            return True

        assert run_with_big_stack(build_and_run) is True

    def test_run_with_big_stack_propagates_errors(self):
        def boom():
            raise ValueError("inner")

        with pytest.raises(ValueError):
            run_with_big_stack(boom)

    def test_run_with_big_stack_returns_value(self):
        assert run_with_big_stack(lambda: 42) == 42


class TestUnknownCheck:
    def test_unknown_uid_raises(self, engine_factory):
        @check
        def trivial(e):
            return True

        engine = engine_factory(trivial)
        engine.run(None)
        with pytest.raises(UnknownCheckError):
            engine.memo_call(999_999, (None,))


class TestWriteLogHygiene:
    def test_log_stays_bounded_under_churn(self, engine_factory):
        @check
        def watched(e):
            if e is None:
                return True
            return watched(e.next)

        engine = engine_factory(watched)
        head = Elem(1, Elem(2))
        engine.run(head)
        for i in range(500):
            head.next = head.next  # monitored store every iteration
            engine.run(head)
        # Consumed on every run: the global log must not accumulate.
        assert len(tracking_state().write_log) <= 2

    def test_unconsumed_writes_deduplicated(self, engine_factory):
        @check
        def watcher(e):
            if e is None:
                return True
            return watcher(e.next)

        engine = engine_factory(watcher)
        head = Elem(1)
        engine.run(head)
        for _ in range(100):
            head.next = None  # same location, engine never runs
        assert len(tracking_state().write_log) == 1
        assert engine.run(head) is True


class TestArgumentVariety:
    def test_multi_arg_checks(self, engine_factory):
        @check
        def bounded(e, lo, hi):
            if e is None:
                return True
            if e.value < lo or e.value > hi:
                return False
            return bounded(e.next, lo, hi)

        engine = engine_factory(bounded)
        head = Elem(5, Elem(7))
        assert engine.run(head, 0, 10) is True
        assert engine.run(head, 6, 10) is False
        assert engine.run(head, 0, 10) is True  # re-anchor back

    def test_distinct_bounds_distinct_nodes(self, engine_factory):
        @check
        def spans(e, lo, hi):
            if e is None:
                return True
            ok = lo <= e.value
            b = spans(e.next, lo, hi)
            return ok and b

        engine = engine_factory(spans)
        head = Elem(5, Elem(7))
        engine.run(head, 0, 10)
        first = engine.graph_size
        engine.run(head, 1, 10)
        # Different explicit bounds: a parallel chain of invocations was
        # built, then the old chain was pruned after re-anchoring.
        assert engine.graph_size == first

    def test_zero_arg_check_rejected_gracefully(self, engine_factory):
        @check
        def constant():
            return True

        engine = engine_factory(constant)
        assert engine.run() is True
        assert engine.run() is True


class TestTrackedArrayChecks:
    def test_array_growth_via_replacement(self, engine_factory):
        class Holder(TrackedObject):
            def __init__(self, n):
                self.items = TrackedArray(n, fill=0)

        @check
        def all_zero(h, i):
            a = h.items
            if i >= len(a):
                return True
            ok = a[i] == 0
            b = all_zero(h, i + 1)
            return ok and b

        engine = engine_factory(all_zero)
        holder = Holder(4)
        assert engine.run(holder, 0) is True
        bigger = TrackedArray(8, fill=0)
        holder.items = bigger  # single field write replaces the array
        assert engine.run(holder, 0) is True
        bigger[5] = 1
        assert engine.run(holder, 0) is False
