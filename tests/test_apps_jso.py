"""JSO (paper §5.2): the JavaScript tokenizer, the renaming obfuscator,
and the Figure 13 invariant."""

from __future__ import annotations

import pytest

from repro.apps import (
    JList,
    JsObfuscator,
    TokenKind,
    generate_program,
    good_mapping,
    jso_invariant,
    tokenize,
)
from repro.apps.jso import RESERVED_WORDS, TokenizeError


class TestTokenizer:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("function foo(bar) { return bar; }")
        kinds = [(t.kind, t.text) for t in tokens]
        assert (TokenKind.KEYWORD, "function") in kinds
        assert (TokenKind.IDENT, "foo") in kinds
        assert (TokenKind.IDENT, "bar") in kinds
        assert (TokenKind.KEYWORD, "return") in kinds

    def test_numbers(self):
        tokens = tokenize("x = 42 + 3.14 + 0xFF + 1e-3;")
        numbers = [t.text for t in tokens if t.kind is TokenKind.NUMBER]
        assert numbers == ["42", "3.14", "0xFF", "1e-3"]

    def test_strings_with_escapes(self):
        tokens = tokenize(r'var s = "he said \"hi\"" + \'x\';'.replace("\\'", "'"))
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert strings[0].text == r'"he said \"hi\""'

    def test_template_literal_multiline(self):
        tokens = tokenize("var t = `a\nb`;")
        templates = [t for t in tokens if t.kind is TokenKind.TEMPLATE]
        assert templates[0].text == "`a\nb`"

    def test_comments_dropped_by_default(self):
        tokens = tokenize("x = 1; // trailing\n/* block */ y = 2;")
        assert all(t.kind is not TokenKind.COMMENT for t in tokens)

    def test_trivia_kept_on_request(self):
        tokens = tokenize("x = 1; // c\n", keep_trivia=True)
        assert any(t.kind is TokenKind.COMMENT for t in tokens)
        assert any(t.kind is TokenKind.WHITESPACE for t in tokens)
        assert "".join(t.text for t in tokens) == "x = 1; // c\n"

    def test_multi_char_punctuation(self):
        tokens = tokenize("a === b && c => d ?? e;")
        punct = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
        assert "===" in punct and "&&" in punct and "=>" in punct
        assert "??" in punct

    def test_positions(self):
        tokens = tokenize("a;\n  b;")
        b = next(t for t in tokens if t.is_ident("b"))
        assert b.line == 2 and b.column == 3

    def test_unterminated_string(self):
        with pytest.raises(TokenizeError):
            tokenize('x = "oops')

    def test_unterminated_comment(self):
        with pytest.raises(TokenizeError):
            tokenize("/* never closed")

    def test_unexpected_character(self):
        with pytest.raises(TokenizeError):
            tokenize("x = 1 @ 2")

    def test_roundtrip_with_trivia(self):
        src = "function f(a) {\n  // note\n  return a * 2;\n}\n"
        tokens = tokenize(src, keep_trivia=True)
        assert "".join(t.text for t in tokens) == src


class TestObfuscator:
    def test_renames_function_declaration_and_calls(self):
        jso = JsObfuscator()
        out = jso.feed("function greet(x) { return x; }\ngreet(1);\n")
        assert "greet" not in out
        assert "function" in out
        new_name = jso.mapping["greet"]
        assert out.count(new_name) == 2

    def test_reserved_names_not_renamed(self):
        jso = JsObfuscator()
        # `eval` is on the reserved list even as a declaration target.
        out = jso.feed("function eval(x) { return x; }")
        assert "eval" in out
        assert "eval" not in jso.mapping

    def test_uppercase_and_digit_initial_protected(self):
        jso = JsObfuscator()
        out = jso.feed("function Widget(x) { return x; }")
        assert "Widget" in out
        assert jso.mapping == {}

    def test_consistent_across_chunks(self):
        jso = JsObfuscator()
        jso.feed("function alpha(x) { return x; }")
        out2 = jso.feed("alpha(5); beta(6);")
        assert jso.mapping["alpha"] in out2
        assert "beta" in out2  # unknown identifier untouched

    def test_fresh_names_unique(self):
        jso = JsObfuscator()
        for i in range(60):
            jso.feed(f"function fn_{i}(x) {{ return x; }}")
        new_names = list(jso.mapping.values())
        assert len(set(new_names)) == len(new_names)

    def test_names_list_mirrors_mapping(self):
        jso = JsObfuscator()
        jso.feed("function one(x) { return x; }")
        jso.feed("function two(x) { return x; }")
        names = []
        node = jso.names
        while node is not None:
            names.append(node.value)
            node = node.next
        assert sorted(names) == ["one", "two"]

    def test_drop_name(self):
        jso = JsObfuscator()
        jso.feed("function gone(x) { return x; }")
        assert jso.drop_name("gone") is True
        assert jso.drop_name("gone") is False
        assert jso.names is None
        assert "gone" not in jso.mapping

    def test_output_still_tokenizes(self):
        jso = JsObfuscator()
        chunks = [jso.feed(c) for c in generate_program(30, seed=5)]
        tokenize("".join(chunks))  # must not raise


class TestFigure13Invariant:
    def test_good_mapping_accepts_valid_names(self):
        jso = JsObfuscator()
        jso.feed("function fine_name(x) { return x; }")
        assert jso_invariant(jso) is True

    def test_reserved_key_detected(self):
        jso = JsObfuscator()
        jso.corrupt_add("while")
        assert jso_invariant(jso) is False

    def test_uppercase_key_detected(self):
        jso = JsObfuscator()
        jso.corrupt_add("Widget")
        assert jso_invariant(jso) is False

    def test_digit_key_detected(self):
        jso = JsObfuscator()
        jso.names = JList("9lives", jso.names)
        assert jso_invariant(jso) is False

    def test_good_mapping_direct(self):
        jso = JsObfuscator()
        assert good_mapping(jso, None) is True
        assert good_mapping(jso, JList("ok_name")) is True
        assert good_mapping(jso, JList("ok", JList("for"))) is False

    def test_incremental_agrees_over_a_run(self, engine_factory):
        engine = engine_factory(jso_invariant)
        jso = JsObfuscator()
        assert engine.run(jso) is True
        for chunk in generate_program(80, seed=9):
            jso.feed(chunk)
            assert engine.run(jso) == jso_invariant(jso) is True

    def test_incremental_detects_protected_name(self, engine_factory):
        engine = engine_factory(jso_invariant)
        jso = JsObfuscator()
        for chunk in generate_program(20, seed=10):
            jso.feed(chunk)
        assert engine.run(jso) is True
        jso.corrupt_add("typeof")
        assert engine.run(jso) == jso_invariant(jso) is False
        jso.drop_name("typeof")
        assert engine.run(jso) is True

    def test_per_event_work_bounded(self, engine_factory):
        engine = engine_factory(jso_invariant)
        jso = JsObfuscator()
        chunks = list(generate_program(120, seed=12))
        for chunk in chunks[:-1]:
            jso.feed(chunk)
        engine.run(jso)
        jso.feed(chunks[-1])
        report = engine.run_with_report(jso)
        assert report.result is True
        # One new name costs O(reserved list), not O(names * reserved).
        assert report.delta["execs"] <= len(RESERVED_WORDS) + 5


class TestGenerateProgram:
    def test_deterministic(self):
        a = list(generate_program(10, seed=3))
        b = list(generate_program(10, seed=3))
        assert a == b

    def test_size_scales(self):
        assert len(list(generate_program(25))) == 25

    def test_chunks_are_valid_js(self):
        for chunk in generate_program(15, seed=4):
            tokens = tokenize(chunk)
            assert tokens[0].text == "function"
