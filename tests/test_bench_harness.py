"""Benchmark harness: workloads preserve invariants, the runner produces
sane measurements, the report renders, and the CLI runs end to end."""

from __future__ import annotations

import pytest

from repro.bench import (
    WORKLOADS,
    Workload,
    find_crossover,
    format_phase_breakdown,
    format_series,
    format_table,
    get_workload,
    measure_modes,
    measure_soak,
    speedup_series,
    sweep,
)
from repro.bench.report import format_crossover
from repro.bench.runner import run_cycle
from repro.core.engine import DittoEngine


class TestWorkloads:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_build_and_mutate_preserves_invariant(self, name):
        workload = get_workload(name, 20, seed=1)
        assert workload.run_full_check() is True
        for _ in range(15):
            workload.mutate()
            assert workload.run_full_check() is True

    @pytest.mark.parametrize("name", ["ordered_list", "red_black_tree"])
    def test_deterministic_in_seed(self, name):
        a = get_workload(name, 30, seed=9)
        b = get_workload(name, 30, seed=9)
        for _ in range(10):
            a.mutate()
            b.mutate()
        assert a.run_full_check() == b.run_full_check() is True

    def test_sizes_respected(self):
        lst = get_workload("ordered_list", 25)
        assert len(lst.structure) == 25
        rbt = get_workload("red_black_tree", 25)
        assert len(rbt.structure) == 25
        hsh = get_workload("hash_table", 25)
        assert len(hsh.structure) == 25

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nope", 10)

    def test_jso_exhaustion_churns(self):
        workload = get_workload("jso", 5, seed=2)
        for _ in range(12):  # more mutations than chunks
            workload.mutate()
        assert workload.run_full_check() is True


class TestRunner:
    def test_measure_modes_all(self):
        results = measure_modes(
            "ordered_list", 30, 10, ("none", "full", "ditto", "naive")
        )
        assert set(results) == {"none", "full", "ditto", "naive"}
        for mode, r in results.items():
            assert r.seconds >= 0
            assert r.mode == mode
        assert results["none"].checks == 0
        assert results["full"].checks == 10

    def test_run_cycle_flags_violations(self):
        workload = get_workload("ordered_list", 10)
        workload.structure.corrupt(0, 10**9)
        with pytest.raises(AssertionError):
            run_cycle(workload, 1, "full")

    def test_run_cycle_incremental(self):
        workload = get_workload("ordered_list", 10)
        engine = DittoEngine(workload.entry)
        engine.run(*workload.check_args())
        checks = run_cycle(workload, 5, "ditto", engine)
        assert checks == 5
        engine.close()

    def test_sweep_rows(self):
        rows = sweep("ordered_list", (10, 20), mods=5)
        assert [r.size for r in rows] == [10, 20]
        for row in rows:
            assert row.full_s > 0 and row.ditto_s > 0
            assert row.speedup == pytest.approx(row.full_s / row.ditto_s)

    def test_speedup_series_shape(self):
        series = speedup_series("ordered_list", (10, 20), mods=5)
        assert [s for s, _ in series] == [10, 20]

    def test_crossover_exists_for_ordered_list(self):
        result = find_crossover(
            "ordered_list", mods=200, lo=4, hi=500, repeats=1
        )
        # With the paper's measurement protocol (many modifications per
        # instantiation) DITTO wins well below 500 elements; the exact
        # crossover varies by machine.
        assert result.crossover_size is not None
        assert result.crossover_size <= 500
        assert result.probes

    def test_engine_options_forwarded(self):
        results = measure_modes(
            "ordered_list", 15, 5, ("ditto",),
            engine_options={"leaf_optimization": False},
        )
        assert results["ditto"].seconds >= 0

    def test_measure_modes_phase_times(self):
        results = measure_modes(
            "ordered_list", 20, 5, ("full", "ditto")
        )
        assert results["full"].phase_times == {}  # no engine ran
        ditto_phases = results["ditto"].phase_times
        assert "exec" in ditto_phases
        assert all(v > 0 for v in ditto_phases.values())

    def test_measure_soak(self):
        result = measure_soak("ordered_list", 25, 8)
        assert result.mods == 8
        assert len(result.run_durations) == 8
        assert all(d > 0 for d in result.run_durations)
        assert result.counters["incremental_runs"] == 8
        assert "exec" in result.phase_times
        assert result.graph_size > 0
        # Per-run phase sums stay inside the soak's wall clock.
        assert sum(result.phase_times.values()) <= result.seconds + 0.05

    def test_measure_soak_with_trace_sink(self):
        from repro.obs import RingBufferSink

        sink = RingBufferSink()
        measure_soak(
            "ordered_list", 20, 5,
            engine_options={"trace_sink": sink},
        )
        assert sink.events_emitted > 0
        assert sink.spans("exec")


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "long"], [(1, 2), (33, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_series(self):
        rows = sweep("ordered_list", (10,), mods=3)
        out = format_series("title", rows)
        assert "title" in out and "DITTO" in out

    def test_format_crossover(self):
        result = find_crossover("ordered_list", mods=5, lo=4, hi=16,
                                repeats=1)
        out = format_crossover([result])
        assert "ordered_list" in out

    def test_format_phase_breakdown(self):
        out = format_phase_breakdown(
            {"exec": 0.75, "prune": 0.25}, total=2.0
        )
        lines = out.splitlines()
        assert "phase" in lines[0] and "share" in lines[0]
        # Rows are sorted by descending time; the gap to the total shows
        # up as the unattributed row.
        body = "\n".join(lines[2:])
        assert body.index("exec") < body.index("prune")
        assert "37.5%" in body
        assert "(unattributed)" in body
        assert "50.0%" in body

    def test_format_phase_breakdown_without_total(self):
        out = format_phase_breakdown({"exec": 1.0})
        assert "100.0%" in out
        assert "(unattributed)" not in out


class TestCli:
    def test_quick_fig11_single(self, capsys):
        from repro.bench.cli import main

        assert main(["fig11", "--quick", "--workload", "ordered_list",
                     "--mods", "5"]) == 0
        out = capsys.readouterr().out
        assert "fig11-ordered_list" in out
        assert "speedup" in out

    def test_quick_netcols(self, capsys):
        from repro.bench.cli import main

        assert main(["netcols", "--quick", "--mods", "5"]) == 0
        assert "frame time" in capsys.readouterr().out

    def test_quick_ablation(self, capsys):
        from repro.bench.cli import main

        assert main(["ablation", "--quick", "--mods", "4"]) == 0
        out = capsys.readouterr().out
        assert "abl-optimistic" in out and "abl-impl" in out

    def test_quick_fig14(self, capsys):
        from repro.bench.cli import main

        assert main(["fig14", "--quick", "--mods", "4"]) == 0
        assert "fig14-jso" in capsys.readouterr().out

    def test_json_output(self, capsys, tmp_path):
        import json

        from repro.bench.cli import main

        path = tmp_path / "bench.json"
        assert main(["fig11", "--quick", "--workload", "ordered_list",
                     "--mods", "5", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        rows = payload["fig11"]["workloads"]["ordered_list"]
        assert [r["size"] for r in rows] == [50, 200, 800]
        assert all(r["full_s"] > 0 for r in rows)
        assert payload["meta"]["quick"] is True

    def test_overhead_command(self, capsys):
        from repro.bench.cli import main

        assert main(["overhead", "--quick", "--workload",
                     "ordered_list"]) == 0
        out = capsys.readouterr().out
        assert "graph nodes" in out
        assert "nodes/element" in out

    def test_fig11_prints_chart(self, capsys):
        from repro.bench.cli import main

        main(["fig11", "--quick", "--workload", "ordered_list",
              "--mods", "5"])
        out = capsys.readouterr().out
        assert "time (s) vs size" in out
        assert "D = ditto" in out

    def test_soak_command_json_and_trace(self, capsys, tmp_path):
        import json

        from repro.bench.cli import main
        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        json_path = tmp_path / "soak.json"
        assert main(["soak", "--quick", "--mods", "6",
                     "--trace", str(trace_path),
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "obs-soak" in out
        assert "per-run latency" in out
        assert "share" in out  # the phase-breakdown table
        # The JSON payload carries the per-phase breakdown.
        payload = json.loads(json_path.read_text())
        assert "exec" in payload["soak"]["phase_times"]
        assert len(payload["soak"]["run_durations"]) == 6
        # The --trace file is a loadable Chrome trace.
        assert validate_chrome_trace(str(trace_path)) == []

    def test_fig11_with_trace(self, capsys, tmp_path):
        from repro.bench.cli import main
        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "fig11_trace.json"
        assert main(["fig11", "--quick", "--workload", "ordered_list",
                     "--mods", "4", "--trace", str(trace_path)]) == 0
        assert "Chrome trace written" in capsys.readouterr().out
        assert validate_chrome_trace(str(trace_path)) == []
