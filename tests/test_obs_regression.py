"""Continuous regression detection: EWMA streaks, frozen-p99
corroboration, emission into sinks/metrics, and the pool wiring.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    RegressionAlert,
    RegressionDetector,
    RingBufferSink,
    parse_prometheus_text,
)


def _warm(det: RegressionDetector, check: str, value: float, n: int):
    for _ in range(n):
        assert det.observe(check, value) == []


class TestEwmaDetector:
    def test_consecutive_breaches_alert_once(self):
        det = RegressionDetector(min_samples=5, consecutive=3, window=16,
                                 p99_threshold=1e9)
        _warm(det, "c", 0.001, 10)
        assert det.observe("c", 0.010) == []   # streak 1
        assert det.observe("c", 0.010) == []   # streak 2
        alerts = det.observe("c", 0.010)       # streak 3 -> alert
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.kind == "ewma"
        assert alert.check == "c"
        assert alert.ratio == pytest.approx(10.0, rel=0.01)
        assert alert.wall_time > 0
        # Re-seeded at the plateau: staying there never re-alerts.
        for _ in range(20):
            assert det.observe("c", 0.010) == []

    def test_single_outlier_never_alerts(self):
        det = RegressionDetector(min_samples=5, consecutive=3, window=16)
        _warm(det, "c", 0.001, 10)
        assert det.observe("c", 0.050) == []   # GC pause
        _warm(det, "c", 0.001, 20)             # streak reset

    def test_further_jump_alerts_again(self):
        det = RegressionDetector(min_samples=5, consecutive=2,
                                 window=256, p99_threshold=1e9)
        _warm(det, "c", 0.001, 10)
        det.observe("c", 0.010)
        assert det.observe("c", 0.010)          # first plateau
        _warm(det, "c", 0.010, 10)
        det.observe("c", 0.100)
        assert det.observe("c", 0.100)          # second plateau

    def test_checks_are_independent(self):
        det = RegressionDetector(min_samples=3, consecutive=1, window=8)
        _warm(det, "a", 0.001, 6)
        _warm(det, "b", 1.000, 6)               # slow but *stable*
        assert det.observe("b", 1.000) == []
        assert det.observe("a", 0.010)          # only a regressed


class TestP99Detector:
    def test_plateau_alerts_lone_outlier_does_not(self):
        det = RegressionDetector(
            min_samples=8, consecutive=3, window=8,
            threshold=100.0,  # park the EWMA detector out of the way
        )
        _warm(det, "c", 0.001, 8)  # freezes p99 at 0.001
        # One outlier rolls through the window: p99(max) breaches but the
        # 3rd-largest sample does not -> corroboration holds it back.
        assert det.observe("c", 0.050) == []
        for _ in range(7):
            assert det.observe("c", 0.001) == []
        # A genuine plateau: three window samples above the bar.
        det.observe("c", 0.050)
        det.observe("c", 0.050)
        alerts = det.observe("c", 0.050)
        assert [a.kind for a in alerts] == ["p99"]
        assert alerts[0].baseline == pytest.approx(0.001)
        # Refrozen at the new level: the same plateau stays quiet.
        for _ in range(16):
            assert det.observe("c", 0.050) == []

    def test_no_alert_before_min_samples(self):
        det = RegressionDetector(min_samples=50, consecutive=1, window=8)
        for _ in range(30):
            assert det.observe("c", 0.001) == []
        assert det.observe("c", 1.0) == []  # still warming up


class TestEmission:
    def test_sink_instant_and_metrics(self):
        sink = RingBufferSink()
        registry = MetricsRegistry()
        det = RegressionDetector(
            min_samples=3, consecutive=1, window=8,
            sink=sink, metrics=registry,
        )
        _warm(det, "c", 0.001, 6)
        assert det.observe("c", 0.010)
        (instant,) = sink.instants("regression_alert")
        assert instant.args["check"] == "c"
        assert instant.args["kind"] == "ewma"
        text = registry.to_prometheus_text()
        parsed = parse_prometheus_text(text)
        total = parsed["ditto_regression_alerts_total"]["samples"]
        assert total["ditto_regression_alerts_total"] == 1.0
        ewma = parsed["ditto_regression_alerts_total_ewma"]["samples"]
        assert ewma["ditto_regression_alerts_total_ewma"] == 1.0

    def test_alert_log_bounded(self):
        from repro.obs.regression import MAX_ALERTS

        det = RegressionDetector(min_samples=2, consecutive=1, window=4)
        value = 0.001
        for _ in range(MAX_ALERTS + 50):
            _warm(det, "c", value, 3)
            value *= 3.0
            det.observe("c", value)
        assert len(det.alerts) == MAX_ALERTS


class TestValidationAndIntrospection:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RegressionDetector(alpha=0.0)
        with pytest.raises(ValueError):
            RegressionDetector(threshold=1.0)
        with pytest.raises(ValueError):
            RegressionDetector(p99_threshold=0.5)
        with pytest.raises(ValueError):
            RegressionDetector(consecutive=0)
        with pytest.raises(ValueError):
            RegressionDetector(min_samples=0)
        with pytest.raises(ValueError):
            RegressionDetector(window=1)

    def test_baseline_and_to_json(self):
        det = RegressionDetector(min_samples=4, consecutive=1, window=8)
        assert det.baseline("c") is None
        _warm(det, "c", 0.002, 6)
        base = det.baseline("c")
        assert base["samples"] == 6
        assert base["ewma_s"] == pytest.approx(0.002)
        assert base["frozen_p99_s"] == pytest.approx(0.002)
        doc = det.to_json()
        assert doc["kind"] == "regression_report"
        assert doc["samples_seen"] == 6
        assert doc["baselines"][0]["check"] == "c"
        assert doc["alerts"] == []
        assert doc["thresholds"]["consecutive"] == 1

    def test_observe_thread_safe(self):
        det = RegressionDetector(min_samples=5, consecutive=3,
                                 window=32)

        def feed():
            for _ in range(500):
                det.observe("c", 0.001)

        threads = [threading.Thread(target=feed) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert det.samples_seen == 2000
        assert det.baseline("c")["samples"] == 2000
        assert list(det.alerts) == []  # constant latency: no alerts


class TestPoolWiring:
    def test_pool_feeds_service_time(self, tmp_path):
        from repro.qa.models import get_model
        from repro.serving.pool import EnginePool, PoolConfig

        model = get_model("ordered_list")
        det = RegressionDetector(min_samples=2, consecutive=1, window=8)
        pool = EnginePool(
            PoolConfig(shards=1, workers=1), regression=det
        )
        try:
            pool.register("t", model.entry)
            structure = model.fresh()
            for _ in range(5):
                result = pool.check("t", *model.check_args(structure))
                assert result.status == "ok"
        finally:
            pool.close()
        base = det.baseline(model.entry.name)
        assert base is not None
        assert base["samples"] == 5


class TestAlertRecord:
    def test_to_dict_shape(self):
        alert = RegressionAlert(
            check="c", kind="ewma", observed=0.01, baseline=0.001,
            ratio=10.0, samples=42, wall_time=123.0,
        )
        assert alert.to_dict() == {
            "check": "c",
            "kind": "ewma",
            "observed_s": 0.01,
            "baseline_s": 0.001,
            "ratio": 10.0,
            "samples": 42,
            "wall_time": 123.0,
        }
