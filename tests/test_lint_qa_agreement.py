"""Differential agreement between the static linter and the QA oracle.

The linter's soundness claim has two directions, and both are tested
against the PR-3 differential harness (scratch re-execution is ground
truth):

* **Lint-clean implies no divergence.**  The shipped structure modules
  lint with zero errors, and seeded fuzzing of their invariants finds no
  divergence between incremental and scratch execution.
* **Lint findings predict real divergence.**  A barrier-bypassing mutator
  (the canonical ``object.__setattr__`` shape) is flagged by a DIT rule —
  and actually drives the incremental engine into serving a stale result
  that from-scratch execution contradicts.  Suppressing the lint (noqa)
  removes the diagnostic but not the divergence: the rule is load-bearing,
  not cosmetic.
"""

from __future__ import annotations

import os

import pytest

from repro import DittoEngine
from repro.lint.modlint import lint_paths
from repro.qa.generator import TraceGenerator
from repro.qa.oracle import Oracle
from repro.structures.ordered_list import OrderedIntList, is_ordered

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
STRUCTURES_DIR = os.path.join(REPO_SRC, "repro", "structures")

#: Fixed seeds so failures are reproducible bug reports, not flakes.
SEEDS = (1001, 2002)


def test_shipped_structures_lint_clean():
    report = lint_paths([STRUCTURES_DIR])
    assert report.exit_code() == 0, report.format_text()


@pytest.mark.parametrize("structure", ["ordered_list", "binary_heap"])
@pytest.mark.parametrize("seed", SEEDS)
def test_lint_clean_checks_never_diverge(structure, seed):
    """Direction 1: the lint-passing invariants agree with scratch
    execution over seeded mutation traces."""
    trace = TraceGenerator(structure, seed=seed, op_count=120).generate()
    report = Oracle(structure).run(trace)
    assert report.ok, [str(d) for d in report.divergences]
    assert report.checks_run > 0


# A barrier-bypassing mutator, exactly the shape DIT101 exists for. -----------

BYPASS_SOURCE = '''\
from repro import TrackedObject, check


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def bypassed_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return bypassed_ordered(e.next)


def corrupt_quietly(e, value):
    object.__setattr__(e, "value", value){noqa}
'''


def _bypass(elem, value):
    """The runtime twin of ``corrupt_quietly``: store without the barrier."""
    object.__setattr__(elem, "value", value)


def test_bypass_mutator_is_flagged_by_lint(tmp_path):
    path = tmp_path / "bypassing.py"
    path.write_text(BYPASS_SOURCE.format(noqa=""))
    report = lint_paths([str(path)])
    assert "DIT101" in report.codes()
    assert report.exit_code() == 1


def test_bypass_mutator_reproduces_divergence(engine_factory):
    """Direction 2: the flagged store really does desynchronize the
    incremental engine from scratch execution."""
    engine = engine_factory(is_ordered)
    lst = OrderedIntList()
    for value in (1, 3, 5, 7, 9):
        lst.insert(value)
    assert engine.run(lst.head) is True

    _bypass(lst.head.next, 100)  # 1,100,5,... — now out of order
    incremental = engine.run(lst.head)
    scratch = is_ordered.original(lst.head)
    assert scratch is False
    assert incremental is True  # stale: the write was never logged
    assert incremental != scratch

    # The same store through the barrier is repaired correctly.
    lst.head.next.value = 100
    assert engine.run(lst.head) is False


def test_pure_method_reads_are_attributed(engine_factory):
    """Agreement, method edition — direction 1: a registered pure method
    whose reads are depth-1 lints clean (no DIT008), and the engine
    attributes those reads to the calling node, so mutating the field the
    *method* (not the check body) reads still dirties and repairs the
    graph.  Before method-read attribution this served a stale result:
    ``Runtime.method`` policed purity but recorded nothing."""
    from repro import TrackedObject, check, register_pure_method

    class Tag(TrackedObject):
        def __init__(self, tag, next=None):
            self.tag = tag
            self.next = next

        def tag_upper(self):
            return self.tag.upper()

    register_pure_method(Tag, "tag_upper")

    @check
    def no_bad_tags(e):
        if e is None:
            return True
        if e.tag_upper() == "BAD":
            return False
        return no_bad_tags(e.next)

    engine = engine_factory(no_bad_tags)
    head = Tag("alpha", Tag("beta", Tag("gamma")))
    assert engine.run(head) is True

    head.next.tag = "bad"  # through the barrier; read only by the method
    incremental = engine.run(head)
    scratch = no_bad_tags.original(head)
    assert scratch is False
    assert incremental == scratch, (
        "method-read left unattributed: stale result served"
    )


def test_unattributable_method_flagged_and_diverges(
    tmp_path, engine_factory
):
    """Agreement, method edition — direction 2: a registered pure method
    with depth-2 reads is flagged (DIT008) — and the finding is
    load-bearing: only the depth-1 receiver read is attributable, so
    mutating the deeper location really does leave the incremental result
    stale against scratch execution."""
    deep_source = (
        "from repro import TrackedObject, check, register_pure_method\n"
        "\n"
        "class Owner(TrackedObject):\n"
        "    def __init__(self, name):\n"
        "        self.name = name\n"
        "\n"
        "class Purse(TrackedObject):\n"
        "    def __init__(self, owner):\n"
        "        self.owner = owner\n"
        "    def owner_name(self):\n"
        "        return self.owner.name\n"
        "\n"
        "register_pure_method(Purse, 'owner_name')\n"
        "\n"
        "@check\n"
        "def purse_named(p):\n"
        "    return p is None or p.owner_name() != ''\n"
    )
    path = tmp_path / "deep_method.py"
    path.write_text(deep_source)
    report = lint_paths([str(path)])
    assert "DIT008" in report.codes()
    assert report.exit_code() == 1

    from repro import TrackedObject, check, register_pure_method

    class Owner(TrackedObject):
        def __init__(self, name):
            self.name = name

    class Purse(TrackedObject):
        def __init__(self, owner):
            self.owner = owner

        def owner_name(self):
            return self.owner.name

    register_pure_method(Purse, "owner_name")

    @check
    def purse_named(p):
        return p is None or p.owner_name() != ""

    engine = engine_factory(purse_named)
    purse = Purse(Owner("ada"))
    assert engine.run(purse) is True

    purse.owner.name = ""  # depth-2: beyond attributable summaries
    incremental = engine.run(purse)
    scratch = purse_named.original(purse)
    assert scratch is False
    assert incremental is True  # stale, exactly as DIT008 predicts
    assert incremental != scratch


def test_suppressed_lint_still_diverges(tmp_path, engine_factory):
    """noqa silences the diagnostic, not the bug: the suppressed variant
    lints clean yet the runtime divergence is unchanged."""
    path = tmp_path / "suppressed.py"
    path.write_text(BYPASS_SOURCE.format(noqa="  # noqa: DIT101"))
    report = lint_paths([str(path)])
    assert "DIT101" not in report.codes()
    assert report.exit_code() == 0

    engine = engine_factory(is_ordered)
    lst = OrderedIntList()
    for value in (2, 4, 6):
        lst.insert(value)
    assert engine.run(lst.head) is True
    _bypass(lst.head, 50)  # 50,4,6 — unordered, but unlogged
    assert engine.run(lst.head) is True  # still stale
    assert is_ordered.original(lst.head) is False


# DIT2xx agreement: classification verdicts and the strategy axis. -------------


def test_dit2xx_rejected_check_never_runs_derived():
    """Agreement, strategy edition: a check the lint layer rejects for
    derived maintenance (DIT202/DIT203) is exactly a check the hybrid
    engine keeps on the memo path, and the strict derived strategy
    refuses outright.  A rejected check can never silently run derived."""
    from repro.core.errors import CheckRestrictionError
    from repro.derive import classify_entry
    from repro.lint import build_plan
    from repro.structures import hash_table_invariant, heap_invariant

    for entry in (heap_invariant, hash_table_invariant, is_ordered):
        classification = classify_entry(entry)
        assert not classification.ok

        plan = build_plan(entry)
        codes = {d.code for d in plan.diagnostics}
        assert codes & {"DIT202", "DIT203"}
        assert "DIT201" not in codes

        engine = DittoEngine(entry, strategy="hybrid")
        try:
            assert engine.active_strategy == "memo"
            assert engine.derived is None
        finally:
            engine.close()

        with pytest.raises(CheckRestrictionError):
            DittoEngine(entry, strategy="derived")


def test_dit201_accepted_check_runs_derived_and_agrees():
    """The flip side: a DIT201-noted entry actually activates the derived
    strategy under hybrid, and its maintained value stays bit-identical
    to scratch execution across point mutations."""
    from repro.lint import build_plan
    from repro.structures import IntVector, vector_sum

    plan = build_plan(vector_sum)
    assert "DIT201" in {d.code for d in plan.diagnostics}
    # Informational only: the note does not gate registration.
    assert plan.ok

    engine = DittoEngine(vector_sum, strategy="hybrid")
    try:
        assert engine.active_strategy == "derived"
        vec = IntVector(range(30))
        assert engine.run(vec) == vector_sum.original(vec)
        vec[7] = -100
        vec.append(41)
        vec.pop()
        assert engine.run(vec) == vector_sum.original(vec)
    finally:
        engine.close()
