"""EngineStats / RunReport accounting."""

from __future__ import annotations

from repro import EngineStats, RunReport, TrackedObject, check


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def stats_len(e):
    if e is None:
        return 0
    return 1 + stats_len(e.next)


class TestEngineStats:
    def test_snapshot_and_delta(self):
        stats = EngineStats()
        before = stats.snapshot()
        stats.execs += 3
        stats.reuses += 1
        delta = stats.delta(before)
        assert delta["execs"] == 3
        assert delta["reuses"] == 1
        assert delta["runs"] == 0

    def test_delta_with_missing_keys(self):
        stats = EngineStats(execs=5)
        assert stats.delta({})["execs"] == 5


class TestRunReport:
    def test_report_fields(self, engine_factory):
        engine = engine_factory(stats_len)
        head = Elem(1, Elem(2))
        report = engine.run_with_report(head)
        assert isinstance(report, RunReport)
        assert report.result == 2
        assert report.mode == "ditto"
        assert report.incremental is False
        assert report.graph_size == 2

    def test_incremental_flag_flips(self, engine_factory):
        engine = engine_factory(stats_len)
        head = Elem(1)
        assert engine.run_with_report(head).incremental is False
        assert engine.run_with_report(head).incremental is True

    def test_counters_accumulate_across_runs(self, engine_factory):
        engine = engine_factory(stats_len)
        head = Elem(1, Elem(2, Elem(3)))
        engine.run(head)
        assert engine.stats.runs == 1
        assert engine.stats.initial_execs == 3
        head.next.next = None
        engine.run(head)
        assert engine.stats.runs == 2
        assert engine.stats.incremental_runs == 1
        assert engine.stats.nodes_pruned == 1

    def test_implicit_reads_counted(self, engine_factory):
        engine = engine_factory(stats_len)
        engine.run(Elem(1))
        assert engine.stats.implicit_reads >= 1
