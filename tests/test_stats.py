"""EngineStats / RunReport accounting."""

from __future__ import annotations

from dataclasses import fields

from repro import EngineStats, RunReport, TrackedObject, check
from repro.core.stats import PHASES


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def stats_len(e):
    if e is None:
        return 0
    return 1 + stats_len(e.next)


class TestEngineStats:
    def test_snapshot_and_delta(self):
        stats = EngineStats()
        before = stats.snapshot()
        stats.execs += 3
        stats.reuses += 1
        delta = stats.delta(before)
        assert delta["execs"] == 3
        assert delta["reuses"] == 1
        assert delta["runs"] == 0

    def test_delta_with_missing_keys(self):
        stats = EngineStats(execs=5)
        assert stats.delta({})["execs"] == 5


class TestFieldContract:
    """The snapshot/delta contract is a *declared* field set: every
    dataclass field must be classified as a counter, a timer, or a log —
    adding an unclassified field is a test failure, not a silent change
    to what ``delta()`` returns."""

    def test_every_field_classified(self):
        declared = (
            set(EngineStats.COUNTER_FIELDS)
            | set(EngineStats.TIMER_FIELDS)
            | set(EngineStats.LOG_FIELDS)
        )
        actual = {f.name for f in fields(EngineStats)}
        assert declared == actual

    def test_no_overlap_between_classes(self):
        counters = set(EngineStats.COUNTER_FIELDS)
        timers = set(EngineStats.TIMER_FIELDS)
        logs = set(EngineStats.LOG_FIELDS)
        assert not (counters & timers)
        assert not (counters & logs)
        assert not (timers & logs)

    def test_snapshot_covers_exactly_the_counters(self):
        snap = EngineStats().snapshot()
        assert set(snap) == set(EngineStats.COUNTER_FIELDS)
        assert all(isinstance(v, int) for v in snap.values())

    def test_delta_excludes_timers_and_logs(self):
        stats = EngineStats()
        stats.time_exec = 1.5
        stats.record_fallback("step_limit", 0.1, rebuilt=True)
        delta = stats.delta(EngineStats().snapshot())
        assert "time_exec" not in delta
        assert "fallback_events" not in delta
        assert delta["scratch_fallbacks"] == 1

    def test_one_timer_per_phase(self):
        assert EngineStats.TIMER_FIELDS == tuple(
            "time_" + phase for phase in PHASES
        )
        timers = EngineStats().timers()
        assert set(timers) == set(PHASES)
        assert all(v == 0.0 for v in timers.values())


class TestRunReport:
    def test_report_fields(self, engine_factory):
        engine = engine_factory(stats_len)
        head = Elem(1, Elem(2))
        report = engine.run_with_report(head)
        assert isinstance(report, RunReport)
        assert report.result == 2
        assert report.mode == "ditto"
        assert report.incremental is False
        assert report.graph_size == 2

    def test_incremental_flag_flips(self, engine_factory):
        engine = engine_factory(stats_len)
        head = Elem(1)
        assert engine.run_with_report(head).incremental is False
        assert engine.run_with_report(head).incremental is True

    def test_counters_accumulate_across_runs(self, engine_factory):
        engine = engine_factory(stats_len)
        head = Elem(1, Elem(2, Elem(3)))
        engine.run(head)
        assert engine.stats.runs == 1
        assert engine.stats.initial_execs == 3
        head.next.next = None
        engine.run(head)
        assert engine.stats.runs == 2
        assert engine.stats.incremental_runs == 1
        assert engine.stats.nodes_pruned == 1

    def test_implicit_reads_counted(self, engine_factory):
        engine = engine_factory(stats_len)
        engine.run(Elem(1))
        assert engine.stats.implicit_reads >= 1

    def test_duration_and_phase_times(self, engine_factory):
        engine = engine_factory(stats_len)
        head = Elem(1, Elem(2))
        initial = engine.run_with_report(head)
        assert initial.duration > 0
        assert "exec" in initial.phase_times
        head.next = None
        report = engine.run_with_report(head)
        assert report.duration > 0
        assert set(report.phase_times) <= set(PHASES)
        # Phase times are per-run, not lifetime accumulators.
        assert report.phase_times["exec"] <= engine.stats.time_exec

    def test_scratch_mode_reports_exec_phase(self, engine_factory):
        engine = engine_factory(stats_len, mode="scratch")
        report = engine.run_with_report(Elem(1))
        assert report.mode == "scratch"
        assert set(report.phase_times) == {"exec"}
        assert report.duration >= report.phase_times["exec"]
