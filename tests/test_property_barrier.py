"""Barrier-completeness properties.

The contract the whole incrementalization rests on (paper §4): after any
``TrackedList``/``TrackedArray`` mutation on a referenced container, every
slot whose value differs from the pre-state — and the length, if it
changed — is covered by some logged location (a point ``IndexLocation``/
``LengthLocation`` or a coalesced ``RangeLocation``).  Conversely, a
mutator that raises must leave the write log untouched.

These properties are what the two confirmed staleness bugs violated: the
unclamped ``insert`` wrote slot ``n`` without covering it, and failing
``pop``/``__setitem__`` logged locations for writes that never happened.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TrackedArray, TrackedList, tracking_state
from repro.core.locations import (
    IndexLocation,
    LengthLocation,
    RangeLocation,
)

#: (op name, argument strategies) — indexes deliberately range far past
#: any reachable occupancy, negative included.
_INDEX = st.integers(min_value=-40, max_value=40)
_VALUE = st.integers(min_value=-50, max_value=50)

_LIST_OPS = st.one_of(
    st.tuples(st.just("append"), _VALUE),
    st.tuples(st.just("insert"), _INDEX, _VALUE),
    st.tuples(st.just("pop"), _INDEX),
    st.tuples(st.just("setitem"), _INDEX, _VALUE),
    st.tuples(st.just("remove"), _VALUE),
    st.tuples(st.just("fill"), _VALUE),
)


def _apply(lst, op):
    name = op[0]
    if name == "append":
        lst.append(op[1])
    elif name == "insert":
        lst.insert(op[1], op[2])
    elif name == "pop":
        lst.pop(op[1])
    elif name == "setitem":
        lst[op[1]] = op[2]
    elif name == "remove":
        lst.remove(op[1])
    elif name == "fill":
        lst.fill(op[1])
    else:  # pragma: no cover - strategy bug
        raise AssertionError(name)


def _covered(logged, container, index):
    for loc in logged:
        if loc.container is not container:
            continue
        if isinstance(loc, IndexLocation) and loc.index == index:
            return True
        if isinstance(loc, RangeLocation) and loc.covers(index):
            return True
    return False


def _assert_complete(logged, lst, before, after):
    """Every observable difference between the two snapshots has barrier
    coverage."""
    if len(before) != len(after):
        assert any(
            isinstance(loc, LengthLocation) and loc.container is lst
            for loc in logged
        ), f"length changed {len(before)}->{len(after)} without <len> entry"
    for i in range(min(len(before), len(after))):
        if before[i] != after[i]:
            assert _covered(logged, lst, i), (
                f"slot {i} changed {before[i]!r}->{after[i]!r} uncovered; "
                f"logged={logged!r}"
            )
    # Slots that came into or went out of existence were written/shifted
    # at their old coordinates too.
    for i in range(min(len(before), len(after)), max(len(before), len(after))):
        assert _covered(logged, lst, i), (
            f"boundary slot {i} uncovered; logged={logged!r}"
        )


@settings(max_examples=200, deadline=None)
@given(
    initial=st.lists(_VALUE, max_size=12),
    ops=st.lists(_LIST_OPS, min_size=1, max_size=8),
)
def test_tracked_list_barrier_completeness(initial, ops):
    lst = TrackedList(initial)
    lst._ditto_incref()
    log = tracking_state().write_log
    cid = log.register()
    try:
        for op in ops:
            before = list(lst)
            try:
                _apply(lst, op)
            except (IndexError, ValueError):
                assert list(lst) == before, f"failed {op} mutated the list"
                assert log.consume(cid) == [], (
                    f"failed {op} logged phantom locations"
                )
                continue
            _assert_complete(log.consume(cid), lst, before, list(lst))
    finally:
        log.unregister(cid)


@settings(max_examples=100, deadline=None)
@given(
    size=st.integers(min_value=0, max_value=10),
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("setitem"), _INDEX, _VALUE),
            st.tuples(st.just("fill"), _VALUE),
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_tracked_array_barrier_completeness(size, ops):
    arr = TrackedArray(size, fill=0)
    arr._ditto_incref()
    log = tracking_state().write_log
    cid = log.register()
    try:
        for op in ops:
            before = list(arr)
            try:
                if op[0] == "setitem":
                    arr[op[1]] = op[2]
                else:
                    arr.fill(op[1])
            except IndexError:
                assert list(arr) == before
                assert log.consume(cid) == []
                continue
            _assert_complete(log.consume(cid), arr, before, list(arr))
    finally:
        log.unregister(cid)


@settings(max_examples=100, deadline=None)
@given(
    initial=st.lists(_VALUE, max_size=10),
    ops=st.lists(_LIST_OPS, min_size=1, max_size=8),
)
def test_list_semantics_match_plain_list(initial, ops):
    """The tracked list must mutate exactly as ``list`` does — same
    clamping on insert, same errors on invalid indexes — whether or not
    the container is referenced."""
    tracked = TrackedList(initial)
    tracked._ditto_incref()
    model = list(initial)
    for op in ops:
        name = op[0]
        tracked_err = model_err = None
        try:
            _apply(tracked, op)
        except (IndexError, ValueError) as exc:
            tracked_err = type(exc).__name__
        try:
            if name == "append":
                model.append(op[1])
            elif name == "insert":
                model.insert(op[1], op[2])
            elif name == "pop":
                model.pop(op[1])
            elif name == "setitem":
                model[op[1]] = op[2]
            elif name == "remove":
                model.remove(op[1])
            elif name == "fill":
                model[:] = [op[1]] * len(model)
        except (IndexError, ValueError) as exc:
            model_err = type(exc).__name__
        assert tracked_err == model_err, (op, tracked_err, model_err)
        assert list(tracked) == model, (op, list(tracked), model)
