"""Tier-1 bridge into the differential-fuzzing harness (`repro.qa`).

Runs a fixed-seed corpus over every registered structure — the paper's
equivalence contract ("incremental == from-scratch", §3.1) checked
mechanically — plus the resilience drill the harness exists for: a
deliberately injected fault must be *caught* as a divergence, *shrunk*
to a tiny reproducer, and *replayable* from its artifact file.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, validate_chrome_trace
from repro.obs.sinks import ChromeTraceSink
from repro.qa import (
    CHECK_OP,
    Op,
    Oracle,
    Shrinker,
    Trace,
    TraceGenerator,
    fault_op,
    get_model,
    model_names,
    python_reproducer,
    replay_trace,
    write_reproducer,
)
from repro.qa.cli import main as qa_main

#: The tier-1 corpus: every structure, two seeds, a few hundred ops.
CORPUS_SEEDS = (0, 1)
CORPUS_OPS = 250


class TestFixedSeedCorpus:
    @pytest.mark.parametrize("structure", model_names())
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_no_divergence(self, structure, seed):
        trace = TraceGenerator(
            structure, seed=seed, op_count=CORPUS_OPS
        ).generate()
        report = Oracle(structure, validate=True).run(trace)
        assert report.ok, "\n".join(str(d) for d in report.divergences)
        assert report.checks_run > 0
        assert report.audit_findings == {"ditto": [], "naive": []}

    def test_generation_is_deterministic(self):
        a = TraceGenerator("rope", seed=7, op_count=120).generate()
        b = TraceGenerator("rope", seed=7, op_count=120).generate()
        assert a.ops == b.ops
        c = TraceGenerator("rope", seed=8, op_count=120).generate()
        assert a.ops != c.ops

    def test_int_vector_corpus_exercises_hostile_indexes(self):
        """The int_vector model must feed the barrier raw out-of-range and
        negative indexes — the regime where both confirmed TrackedList
        bugs lived.  Asserted on the pinned corpus seeds so the coverage
        cannot silently regress."""
        for seed in CORPUS_SEEDS:
            trace = TraceGenerator(
                "int_vector", seed=seed, op_count=CORPUS_OPS
            ).generate()
            indexed = [
                op for op in trace.ops if op.name in ("insert", "pop")
            ]
            assert any(op.args[0] < 0 for op in indexed)
            assert any(op.args[0] > 96 for op in indexed)  # past MAX_LEN

    def test_every_model_emits_corruption(self):
        """The corpus must exercise direct field writes, not just clean
        mutators: every model generates at least one corrupt-style op
        within a few hundred draws."""
        for name in model_names():
            trace = TraceGenerator(name, seed=0, op_count=400).generate()
            assert any(
                op.name.startswith("corrupt") for op in trace.ops
            ), f"{name} corpus never corrupts"


#: Structures whose entry invariant the fold classifier admits (DIT201):
#: the derived strategy actively maintains these, so the parity corpus
#: below is exercising synthesized delta rules, not a silent memo
#: fallback.
DERIVED_STRUCTURES = ("int_vector", "heap_min", "table_occupancy")

#: Scratch ground truth against every strategy at once: the classic memo
#: graph, strict derived maintenance, and the per-check hybrid picker.
STRATEGY_MODES = ("scratch", "ditto", "derived", "hybrid")


class TestStrategyParity:
    """The strategy axis obeys the same equivalence contract as the memo
    engines: `derived` and `hybrid` oracle modes ride the differential
    harness unchanged and must agree with from-scratch execution."""

    @pytest.mark.parametrize("structure", DERIVED_STRUCTURES)
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_derived_corpus_no_divergence(self, structure, seed):
        trace = TraceGenerator(
            structure, seed=seed, op_count=CORPUS_OPS
        ).generate()
        report = Oracle(structure, modes=STRATEGY_MODES).run(trace)
        assert report.ok, "\n".join(str(d) for d in report.divergences)
        assert report.checks_run > 0

    @pytest.mark.parametrize("structure", model_names())
    def test_hybrid_is_total_over_every_model(self, structure):
        """Hybrid must be safe to enable everywhere: on DIT2xx-rejected
        entries it silently falls back to the memo path, on DIT201
        entries it maintains — either way it matches scratch."""
        trace = TraceGenerator(structure, seed=0, op_count=120).generate()
        report = Oracle(structure, modes=("scratch", "hybrid")).run(trace)
        assert report.ok, "\n".join(str(d) for d in report.divergences)
        assert report.checks_run > 0

    def test_derived_activates_only_where_classified(self):
        """The hybrid cells above are meaningful because activation
        differs: classified structures run derived, rejected ones memo."""
        from repro import DittoEngine

        for name in DERIVED_STRUCTURES:
            with DittoEngine(get_model(name).entry, strategy="hybrid") as e:
                assert e.active_strategy == "derived", name
        with DittoEngine(
            get_model("binary_heap").entry, strategy="hybrid"
        ) as e:
            assert e.active_strategy == "memo"

    def test_dropped_write_is_caught_in_derived_mode(self):
        """Harness sensitivity, strategy edition: a dropped write barrier
        leaves the maintained fold stale, and the differential oracle
        catches the divergence instead of papering over it."""
        trace = Trace(
            "int_vector",
            0,
            [
                Op("append", (5,)),
                Op("append", (7,)),
                Op("append", (9,)),
                CHECK_OP,
                fault_op("drop_writes", 1),
                Op("corrupt", (1, -40)),
                CHECK_OP,
            ],
        )
        report = Oracle("int_vector", modes=("scratch", "derived")).run(
            trace
        )
        assert not report.ok
        assert report.faults_armed == 1
        divergence = report.divergences[0]
        assert divergence.kind == "return_mismatch"


def _drill_trace(padding_seed: int = 3) -> Trace:
    """A trace that provably diverges: random padding, then drain the
    list to a known state, build the graph, drop one write barrier, and
    corrupt the head.  Scratch sees False; the incremental engines serve
    stale True."""
    trace = TraceGenerator(
        "ordered_list", seed=padding_seed, op_count=200, check_prob=0.2
    ).generate()
    trace.ops += [Op("delete_first") for _ in range(100)]
    trace.ops += [
        Op("insert", (1,)),
        Op("insert", (5,)),
        CHECK_OP,
        fault_op("drop_writes", 1),
        Op("corrupt", (0, 99)),
    ]
    return trace


class TestFaultDrill:
    def test_injected_fault_is_caught(self):
        report = Oracle("ordered_list").run(_drill_trace())
        assert not report.ok
        assert report.faults_armed == 1
        divergence = report.divergences[0]
        assert divergence.kind == "return_mismatch"
        assert divergence.details["scratch"] == ("value", False)
        assert divergence.details["ditto"] == ("value", True)

    def test_shrinks_to_at_most_ten_ops(self, tmp_path):
        trace = _drill_trace()
        result = Shrinker(
            trace, kind="return_mismatch", max_replays=1500
        ).shrink()
        assert len(result) <= 10
        assert result.original_len == len(trace)
        # The reproducer still carries the fault op and a corruption.
        names = [op.name for op in result.trace.ops]
        assert "@fault" in names and "corrupt" in names
        # Artifacts round-trip: replay file and runnable snippet.
        replay_path, snippet_path = write_reproducer(
            result.trace, str(tmp_path), result.kind, result.original_len
        )
        reloaded = Trace.load(replay_path)
        assert reloaded.ops == result.trace.ops
        assert not replay_trace(reloaded).ok
        snippet = open(snippet_path).read()
        assert "replay_trace" in snippet and "assert not report.ok" in snippet

    def test_replay_via_cli(self, tmp_path, capsys):
        result = Shrinker(
            _drill_trace(), kind="return_mismatch", max_replays=1500
        ).shrink()
        path = tmp_path / "repro.json"
        result.trace.save(str(path))
        # Plain replay exits 1 (a divergence is a failure)…
        assert qa_main(["--replay", str(path)]) == 1
        # …artifact verification mode exits 0 (it *expects* one).
        assert qa_main(["--replay", str(path), "--expect-divergence"]) == 0
        out = capsys.readouterr().out
        assert "divergence reproduced" in out

    def test_corrupt_returns_fault_is_caught_when_consumed(self):
        """A corrupted cached return value is latent under optimistic
        reuse until some caller re-executes and consumes it.  Corrupting
        the deepest node (``is_ordered(n3)``: True -> False) and then
        dirtying the *middle* cell with a sortedness-preserving write
        makes ``is_ordered(n2)`` re-execute, reuse the poisoned child
        cache, and return False while scratch still sees a sorted list."""
        trace = Trace(
            "ordered_list",
            0,
            [
                Op("insert", (1,)),
                Op("insert", (2,)),
                Op("insert", (3,)),
                CHECK_OP,
                fault_op("corrupt_returns", 1),
                Op("corrupt", (1, 1)),  # [1, 1, 3] — still ordered
            ],
        )
        report = Oracle("ordered_list").run(trace)
        assert not report.ok
        divergence = report.divergences[0]
        assert divergence.kind == "return_mismatch"
        assert divergence.details["scratch"] == ("value", True)
        assert divergence.details["ditto"] == ("value", False)


class TestObsIntegration:
    def test_metrics_emitted(self):
        registry = MetricsRegistry()
        trace = TraceGenerator("binary_heap", seed=0, op_count=60).generate()
        report = Oracle("binary_heap", metrics=registry).run(trace)
        assert report.ok
        snapshot = registry.snapshot()
        assert snapshot["qa_traces_total"] == 1
        assert snapshot["qa_ops_total"] == report.ops_applied
        assert snapshot["qa_checks_total"] == report.checks_run
        assert snapshot["qa_divergences_total"] == 0

    def test_chrome_trace_written_and_valid(self, tmp_path):
        path = tmp_path / "qa_trace.json"
        sink = ChromeTraceSink(str(path), "repro.qa-test")
        trace = TraceGenerator("rope", seed=0, op_count=60).generate()
        report = Oracle("rope", trace_sink=sink).run(trace)
        sink.close()
        assert report.ok
        validate_chrome_trace(str(path), strict=True)
        events = json.loads(path.read_text())["traceEvents"]
        assert any(e.get("name") == "exec" for e in events)


class TestCli:
    def test_clean_fuzz_exits_zero(self, capsys):
        code = qa_main(
            ["--seed", "0", "--ops", "60", "--structure", "skip_list"]
        )
        assert code == 0
        assert "skip_list" in capsys.readouterr().out

    def test_list(self, capsys):
        assert qa_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in model_names():
            assert name in out

    def test_divergent_fuzz_writes_artifacts(self, tmp_path, capsys,
                                             monkeypatch):
        """End to end through the CLI: a trace generator patched to emit
        the drill trace makes the CLI catch, shrink, and persist."""
        drill = _drill_trace()
        monkeypatch.setattr(
            TraceGenerator, "generate", lambda self, inject=None: drill
        )
        code = qa_main(
            [
                "--structure",
                "ordered_list",
                "--artifacts",
                str(tmp_path),
                "--max-shrink-replays",
                "1500",
            ]
        )
        assert code == 1
        artifacts = sorted(p.name for p in tmp_path.iterdir())
        assert artifacts == [
            "qa_repro_ordered_list_seed3.json",
            "qa_repro_ordered_list_seed3.py",
        ]
        shrunk = Trace.load(str(tmp_path / artifacts[0]))
        assert len(shrunk) <= 10


class TestTraceRoundTrip:
    def test_json_round_trip(self, tmp_path):
        trace = TraceGenerator("btree", seed=5, op_count=40).generate()
        path = tmp_path / "t.json"
        trace.save(str(path))
        assert Trace.load(str(path)).ops == trace.ops

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other", "structure": "rope", "ops": []}')
        with pytest.raises(ValueError, match="replay file"):
            Trace.load(str(path))

    def test_reproducer_snippet_is_runnable(self, tmp_path):
        """The generated snippet must execute as written (it asserts the
        divergence reproduces, then exits 1)."""
        result = Shrinker(
            _drill_trace(), kind="return_mismatch", max_replays=1500
        ).shrink()
        source = python_reproducer(result.trace, result.kind)
        with pytest.raises(SystemExit):
            exec(compile(source, "<reproducer>", "exec"), {})


class TestModelContracts:
    @pytest.mark.parametrize("structure", model_names())
    def test_apply_is_total_on_empty_structures(self, structure):
        """Shrinking can strip all the setup ops; whatever remains must
        apply to a fresh structure without raising."""
        model = get_model(structure)
        trace = TraceGenerator(structure, seed=2, op_count=150).generate()
        fresh = model.fresh()
        for op in trace.ops:
            if op.name.startswith("@"):
                continue
            model.apply(fresh, op)  # must not raise

    @pytest.mark.parametrize("structure", model_names())
    def test_args_are_json_primitives(self, structure):
        trace = TraceGenerator(structure, seed=4, op_count=150).generate()
        for op in trace.ops:
            for arg in op.args:
                assert isinstance(arg, (int, float, str, bool)), (
                    structure,
                    op,
                )
