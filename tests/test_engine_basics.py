"""DittoEngine fundamentals: construction, first run, reuse, stats, modes,
lifecycle, error handling."""

from __future__ import annotations

import pytest

from repro import (
    CheckRestrictionError,
    CyclicCheckError,
    DittoEngine,
    EngineStateError,
    ResultTypeError,
    TrackedObject,
    check,
    tracking_state,
)


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def is_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return is_ordered(e.next)


def build_list(values):
    head = None
    for v in reversed(values):
        head = Elem(v, head)
    return head


class TestConstruction:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            DittoEngine(is_ordered, mode="turbo")

    def test_validates_restrictions_up_front(self):
        @check
        def bad(n):
            if n is None:
                return True
            return bad(n.left) and bad(n.right)

        with pytest.raises(CheckRestrictionError):
            DittoEngine(bad)

    def test_monitors_fields_globally(self, engine_factory):
        engine = engine_factory(is_ordered)
        assert tracking_state().is_monitored("next")
        assert tracking_state().is_monitored("value")
        engine.close()
        assert not tracking_state().is_monitored("next")

    def test_accepts_plain_function(self, engine_factory):
        def raw(e):
            return e is None

        engine = engine_factory(check(raw))
        assert engine.run(None) is True


class TestFirstRun:
    def test_builds_graph(self, engine_factory):
        engine = engine_factory(is_ordered)
        head = build_list([1, 2, 3, 4])
        report = engine.run_with_report(head)
        assert report.result is True
        assert report.incremental is False
        assert report.graph_size == 4
        assert report.delta["execs"] == 4
        assert report.delta["full_runs"] == 1

    def test_failure_result(self, engine_factory):
        engine = engine_factory(is_ordered)
        assert engine.run(build_list([3, 1])) is False

    def test_empty_input_leaf(self, engine_factory):
        engine = engine_factory(is_ordered)
        assert engine.run(None) is True


class TestIncrementalRuns:
    def test_no_change_runs_nothing(self, engine_factory):
        engine = engine_factory(is_ordered)
        head = build_list(range(20))
        engine.run(head)
        report = engine.run_with_report(head)
        assert report.result is True
        assert report.incremental is True
        assert report.delta["execs"] == 0
        assert report.delta["dirty_marked"] == 0

    def test_single_insert_constant_work(self, engine_factory):
        engine = engine_factory(is_ordered)
        head = build_list(range(0, 100, 2))
        engine.run(head)
        # Insert 51 after element 50: exactly one implicit input changes.
        e = head
        while e.value != 50:
            e = e.next
        e.next = Elem(51, e.next)
        report = engine.run_with_report(head)
        assert report.result is True
        assert report.delta["dirty_execs"] == 1
        assert report.delta["execs"] == 2  # predecessor + the new element
        assert report.delta["nodes_created"] == 1

    def test_unrelated_write_ignored(self, engine_factory):
        engine = engine_factory(is_ordered)
        head = build_list([1, 2, 3])
        engine.run(head)
        other = Elem(99)  # tracked, but not part of the computation
        other.value = 100
        report = engine.run_with_report(head)
        assert report.delta["execs"] == 0

    def test_same_value_store_still_dirty(self, engine_factory):
        # Barriers fire on stores, not value changes (paper semantics).
        engine = engine_factory(is_ordered)
        head = build_list([1, 2, 3])
        engine.run(head)
        head.value = 1
        report = engine.run_with_report(head)
        assert report.delta["dirty_execs"] == 1
        assert report.result is True


class TestModes:
    def test_scratch_mode_runs_original(self, engine_factory):
        engine = engine_factory(is_ordered, mode="scratch")
        head = build_list([1, 2])
        assert engine.run(head) is True
        assert engine.graph_size == 0
        assert engine.stats.full_runs == 1

    def test_naive_mode_equivalent(self, engine_factory):
        engine = engine_factory(is_ordered, mode="naive")
        head = build_list([1, 5, 9, 12])
        assert engine.run(head) is True
        head.next.next.value = 10  # deep change: root replays its callee
        assert engine.run(head) is True
        assert engine.stats.replays > 0
        head.next.next.value = 0
        assert engine.run(head) is False

    def test_all_modes_agree_after_mutations(self, engine_factory):
        engines = {
            m: engine_factory(is_ordered, mode=m)
            for m in ("scratch", "naive", "ditto")
        }
        head = build_list([2, 4, 6, 8])
        for _ in range(2):
            results = {m: e.run(head) for m, e in engines.items()}
            assert len(set(results.values())) == 1
            head.next.next.value = head.next.next.value + 1


class TestLifecycle:
    def test_invalidate_forces_full_run(self, engine_factory):
        engine = engine_factory(is_ordered)
        head = build_list([1, 2, 3])
        engine.run(head)
        engine.invalidate()
        assert engine.graph_size == 0
        report = engine.run_with_report(head)
        assert report.delta["full_runs"] == 1
        assert report.result is True

    def test_close_is_idempotent(self):
        engine = DittoEngine(is_ordered)
        engine.run(build_list([1]))
        engine.close()
        engine.close()
        with pytest.raises(EngineStateError):
            engine.run(None)

    def test_context_manager(self):
        with DittoEngine(is_ordered) as engine:
            assert engine.run(None) is True
        with pytest.raises(EngineStateError):
            engine.run(None)

    def test_close_releases_refcounts(self):
        engine = DittoEngine(is_ordered)
        head = build_list([1, 2, 3])
        engine.run(head)
        assert head._ditto_refcount > 0
        engine.close()
        assert head._ditto_refcount == 0


class TestErrorCases:
    def test_cyclic_structure_detected(self, engine_factory):
        engine = engine_factory(is_ordered)
        a = Elem(1)
        b = Elem(1, a)
        a.next = b  # cycle, same values so the order test never fails
        with pytest.raises(CyclicCheckError):
            engine.run(a)

    def test_non_primitive_result_rejected(self, engine_factory):
        @check
        def returns_node(e):
            return e

        engine = engine_factory(returns_node)
        with pytest.raises(ResultTypeError):
            engine.run(Elem(1))

    def test_exception_in_first_run_propagates(self, engine_factory):
        @check
        def divides(e):
            return 1 // e.value == 1

        engine = engine_factory(divides)
        with pytest.raises(ZeroDivisionError):
            engine.run(Elem(0))
        # Graph was invalidated; a corrected input works from scratch.
        assert engine.run(Elem(1)) is True

    def test_graph_snapshot(self, engine_factory):
        engine = engine_factory(is_ordered)
        head = build_list([1, 2])
        engine.run(head)
        snap = engine.graph_snapshot()
        assert snap[("is_ordered", (head,))] is True
        assert len(snap) == 2


class TestRootRetargeting:
    def test_new_head_after_delete_first(self, engine_factory):
        engine = engine_factory(is_ordered)
        head = build_list(range(10))
        engine.run(head)
        size_before = engine.graph_size
        report = engine.run_with_report(head.next)  # "delete first"
        assert report.result is True
        assert report.delta["execs"] == 0  # memoized node re-anchored
        assert engine.graph_size == size_before - 1  # old head pruned

    def test_switch_between_structures(self, engine_factory):
        engine = engine_factory(is_ordered)
        a = build_list([1, 2, 3])
        b = build_list([5, 6])
        assert engine.run(a) is True
        assert engine.run(b) is True
        assert engine.run(a) is True
        # Only a's chain is live after re-anchoring back.
        assert engine.graph_size == 3

    def test_mutations_tracked_across_retarget(self, engine_factory):
        engine = engine_factory(is_ordered)
        a = build_list([1, 2, 3])
        b = build_list([5, 6])
        engine.run(a)
        engine.run(b)
        a.value = 99  # a's nodes were pruned; write must not confuse engine
        assert engine.run(b) is True
        assert engine.run(a) is False

    def test_reentrant_run_rejected(self, engine_factory):
        engine = engine_factory(is_ordered)

        # Simulate re-entrancy via the internal flag.
        engine._running = True
        with pytest.raises(EngineStateError):
            engine.run(None)
        engine._running = False
