"""Optimistic mispredictions (paper §3.5): the three failure modes of a
wrongly-reused callee value, and the step-limit fallback."""

from __future__ import annotations

import pytest

from repro import TrackedObject, check


class Cell(TrackedObject):
    def __init__(self, value):
        self.value = value


class Holder(TrackedObject):
    def __init__(self, cell, flag=4, bias=1):
        self.cell = cell
        self.flag = flag
        self.bias = bias


@check
def bottom(c):
    return c.value


@check
def middle(h):
    v = bottom(h.cell)
    return v


@check
def top_divides(h):
    v = middle(h)
    return h.flag // (v - h.bias)


class TestWrongValueScenario:
    """§3.5 case 1: the re-executed caller finishes with a wrong result;
    return-value propagation repairs it."""

    def test_stale_value_corrected_by_propagation(self, engine_factory):
        @check
        def bot2(c):
            return c.value

        @check
        def mid2(h):
            return bot2(h.cell)

        @check
        def top2(h):
            v = mid2(h)
            return h.flag + v

        cell = Cell(10)
        h = Holder(cell, flag=1)
        engine = engine_factory(top2)
        assert engine.run(h) == 11
        # Change both the deep value and the root's own implicit input.
        cell.value = 20
        h.flag = 2
        report = engine.run_with_report(h)
        # top2 re-ran first with the stale mid2 value (optimism), then the
        # propagation pass re-ran it with the corrected value.
        assert report.result == 22
        assert report.delta["propagation_execs"] >= 1
        # And the graph is fully consistent with a from-scratch run.
        assert engine.graph_snapshot()[("top2", (h,))] == 22
        assert engine.graph_snapshot()[("mid2", (h,))] == 20


class TestExceptionScenario:
    """§3.5 case 2: the stale value makes the caller throw; the exception
    is caught, and the caller is re-executed after propagation."""

    def test_stale_value_exception_recovered(self, engine_factory):
        cell = Cell(2)
        h = Holder(cell, flag=4, bias=1)
        engine = engine_factory(top_divides)
        assert engine.run(h) == 4  # 4 // (2 - 1)
        # One run later: bias=2 (fresh implicit) with stale v=2 divides by
        # zero inside top_divides; the true v=3 is fine.
        cell.value = 3
        h.bias = 2
        report = engine.run_with_report(h)
        assert report.result == 4  # 4 // (3 - 2)
        assert report.delta["mispredictions"] >= 1
        # From-scratch agreement.
        assert top_divides(h) == 4

    def test_genuine_exception_forwarded(self, engine_factory):
        """If the exception persists with correct inputs, it reaches the
        main program (as the uninstrumented check would)."""
        cell = Cell(2)
        h = Holder(cell, flag=4, bias=1)
        engine = engine_factory(top_divides)
        assert engine.run(h) == 4
        h.bias = 2  # true v is still 2 -> genuine division by zero
        with pytest.raises(ZeroDivisionError):
            engine.run(h)
        # The uninstrumented check crashes identically.
        with pytest.raises(ZeroDivisionError):
            top_divides(h)
        # The engine recovered to a clean state: fix and re-run.
        h.bias = 1
        assert engine.run(h) == 4

    def test_exception_caused_by_propagated_value(self, engine_factory):
        """A crash first observed while propagating a changed return value
        is also genuine (the from-scratch check crashes too) and must be
        forwarded."""
        cell = Cell(0)
        h = Holder(cell, flag=4, bias=1)
        engine = engine_factory(top_divides)
        assert engine.run(h) == -4  # 4 // (0 - 1)
        cell.value = 1  # only the deep cell changes; top is not dirty
        with pytest.raises(ZeroDivisionError):
            engine.run(h)  # propagation re-runs top with v=1, bias=1
        with pytest.raises(ZeroDivisionError):
            top_divides(h)


class TestStepLimitFallback:
    """§3.5's alternative remedy: a step budget that falls back to a
    from-scratch run when an incremental execution runs too long."""

    class Elem(TrackedObject):
        def __init__(self, value, next=None):
            self.value = value
            self.next = next

    def _build_chain(self, length):
        head = None
        for v in range(length, 0, -1):
            head = self.Elem(v, head)
        return head

    def test_fallback_produces_correct_result(self, engine_factory):
        @check
        def count(e):
            if e is None:
                return 0
            return 1 + count(e.next)

        head = self._build_chain(60)
        engine = engine_factory(count, step_limit=20)
        assert engine.run(head) == 60  # first run: no limit applies
        # Splice in a long fresh chain: the incremental run must create 50
        # new nodes, far over the 20-step budget.
        head.next = self._build_chain(50)
        assert engine.run(head) == 51
        assert engine.stats.scratch_fallbacks == 1
        # The rebuilt graph is fully usable afterwards.
        head.value = 7
        assert engine.run(head) == 51

    def test_generous_limit_never_trips(self, engine_factory):
        @check
        def count2(e):
            if e is None:
                return 0
            return 1 + count2(e.next)

        head = self._build_chain(30)
        engine = engine_factory(count2, step_limit=1_000_000)
        engine.run(head)
        head.value = 5
        assert engine.run(head) == 30
        assert engine.stats.scratch_fallbacks == 0


class TestExceptionSemanticsFuzz:
    """Randomized agreement on exception *semantics*: for a check that can
    genuinely divide by zero, the incremental engine must either return the
    same value as the from-scratch check or raise the same exception type —
    across interleaved mutations, crashes, and repairs."""

    class FussyCell(TrackedObject):
        def __init__(self, value, divisor, next=None):
            self.value = value
            self.divisor = divisor
            self.next = next

    def test_agreement_including_crashes(self, engine_factory):
        import random

        FussyCell = self.FussyCell

        @check
        def fussy_sum(c):
            if c is None:
                return 0
            rest = fussy_sum(c.next)
            return c.value // c.divisor + rest

        for seed in range(25):
            engine = engine_factory(fussy_sum)
            rng = random.Random(seed)
            cells = [
                FussyCell(rng.randrange(100), rng.randrange(1, 5))
                for _ in range(10)
            ]
            for a, b in zip(cells, cells[1:]):
                a.next = b
            head = cells[0]
            for _ in range(30):
                roll = rng.random()
                victim = rng.choice(cells)
                if roll < 0.4:
                    victim.value = rng.randrange(100)
                elif roll < 0.8:
                    victim.divisor = rng.randrange(0, 4)  # 0 => crash
                else:
                    index = rng.randrange(len(cells))
                    cells[index].next = (
                        cells[index + 1] if index + 1 < len(cells) else None
                    )
                try:
                    expected = ("ok", fussy_sum(head))
                except ZeroDivisionError:
                    expected = ("zde", None)
                try:
                    got = ("ok", engine.run(head))
                except ZeroDivisionError:
                    got = ("zde", None)
                assert got == expected
                if got[0] == "ok":
                    engine.validate()
                if rng.random() < 0.7:
                    for cell in cells:
                        if cell.divisor == 0:
                            cell.divisor = 1
            engine.close()


class TestFigure8PresenceCheck:
    """Figure 8(c): a presence check for a special object; moving the
    object flips False/True results that propagate until an ancestor's new
    result matches its old one."""

    def test_moving_special_node(self, engine_factory):
        class TNode(TrackedObject):
            def __init__(self, key, left=None, right=None):
                self.key = key
                self.left = left
                self.right = right

        @check
        def contains_special(n):
            if n is None:
                return False
            if n.key == 999:
                return True
            b1 = contains_special(n.left)
            b2 = contains_special(n.right)
            return b1 or b2

        special = TNode(999)
        ll = TNode(1, special, None)
        lr = TNode(2)
        rl = TNode(3)
        rr = TNode(4)
        left = TNode(5, ll, lr)
        right = TNode(6, rl, rr)
        root = TNode(7, left, right)
        engine = engine_factory(contains_special)
        assert engine.run(root) is True
        # Move the special node from the left branch to the right branch.
        ll.left = None
        rl.left = special
        report = engine.run_with_report(root)
        assert report.result is True
        # The overall result is unchanged: propagation stopped at the root
        # (or earlier), not by exhausting the graph.
        assert engine.graph_snapshot()[("contains_special", (root,))] is True
        assert engine.graph_snapshot()[("contains_special", (left,))] is False
        assert engine.graph_snapshot()[("contains_special", (right,))] is True
