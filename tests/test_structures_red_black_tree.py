"""RedBlackTree: structural correctness against a sorted-set model, and the
three Figure 10 invariants under DITTO (the paper's "acid test")."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.structures import (
    BLACK,
    NIL,
    RED,
    RedBlackTree,
    check_black_depth,
    is_red_black,
    rbt_invariant,
    rbt_is_ordered,
)
from repro.structures.red_black_tree import NEG_INF, POS_INF


def full_invariant(tree) -> bool:
    return rbt_invariant(tree)


class TestTreeSemantics:
    def test_insert_find(self):
        t = RedBlackTree()
        for k in [5, 2, 8, 1]:
            t.insert(k, k * 10)
        assert t.get(5) == 50
        assert t.get(99, "x") == "x"
        assert 2 in t and 99 not in t
        assert len(t) == 4

    def test_insert_update(self):
        t = RedBlackTree()
        t.insert(1, "a")
        t.insert(1, "b")
        assert t.get(1) == "b"
        assert len(t) == 1

    def test_keys_sorted(self):
        t = RedBlackTree()
        for k in [5, 2, 8, 1, 9, 3]:
            t.insert(k)
        assert list(t.keys()) == [1, 2, 3, 5, 8, 9]

    def test_delete(self):
        t = RedBlackTree()
        for k in range(10):
            t.insert(k)
        assert t.delete(5) is True
        assert t.delete(5) is False
        assert list(t.keys()) == [0, 1, 2, 3, 4, 6, 7, 8, 9]
        assert len(t) == 9

    def test_root_is_black(self):
        t = RedBlackTree()
        t.insert(1)
        assert t.root.color == BLACK

    def test_invariants_hold_during_heavy_churn(self):
        t = RedBlackTree()
        rng = random.Random(17)
        keys: set[int] = set()
        for step in range(600):
            if rng.random() < 0.5 or not keys:
                k = rng.randrange(2000)
                t.insert(k)
                keys.add(k)
            else:
                k = rng.choice(sorted(keys))
                t.delete(k)
                keys.discard(k)
            if step % 37 == 0:
                assert full_invariant(t) is True
                assert list(t.keys()) == sorted(keys)
        assert full_invariant(t) is True

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)),
                    max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_matches_set_model(self, ops):
        t = RedBlackTree()
        model: set[int] = set()
        for is_insert, key in ops:
            if is_insert:
                t.insert(key)
                model.add(key)
            else:
                assert t.delete(key) == (key in model)
                model.discard(key)
        assert list(t.keys()) == sorted(model)
        assert full_invariant(t) is True


class TestFigure10Checks:
    def _tree(self, *keys):
        t = RedBlackTree()
        for k in keys:
            t.insert(k)
        return t

    def test_ordered_check(self):
        t = self._tree(5, 2, 8)
        assert rbt_is_ordered(t.root, NEG_INF, POS_INF) is True
        t.corrupt_key(2, 100)
        assert rbt_is_ordered(t.root, NEG_INF, POS_INF) is False

    def test_red_black_local_check(self):
        t = self._tree(5, 2, 8, 1, 3)
        assert is_red_black(t.root) is True
        # Flip a black node with red children to red: red-red violation.
        t.corrupt_color(2)
        assert is_red_black(t.root) is False

    def test_parent_pointer_check(self):
        t = self._tree(5, 2, 8)
        t.root.left.parent = t.root.left  # break the back-pointer
        assert is_red_black(t.root) is False

    def test_black_depth_check(self):
        t = self._tree(*range(20))
        depth = check_black_depth(t.root)
        assert depth >= 1
        # Recoloring a deep black node to red unbalances black depth.
        node = t.root
        while node.left is not NIL:
            node = node.left
        if node.color == BLACK:
            node.color = RED
        else:
            node.color = BLACK
        assert check_black_depth(t.root) == -1

    def test_nil_is_always_black(self):
        assert NIL.color == BLACK
        assert check_black_depth(NIL) == 1
        assert is_red_black(NIL) is True


class TestIncrementalAcidTest:
    def test_agrees_with_scratch_under_churn(self, engine_factory):
        engine = engine_factory(rbt_invariant)
        t = RedBlackTree()
        rng = random.Random(23)
        keys: set[int] = set()
        engine.run(t)
        for _ in range(250):
            if rng.random() < 0.5 or not keys:
                k = rng.randrange(5000)
                t.insert(k)
                keys.add(k)
            else:
                k = rng.choice(sorted(keys))
                t.delete(k)
                keys.discard(k)
            assert engine.run(t) == rbt_invariant(t) is True

    def test_corruption_detected_incrementally(self, engine_factory):
        engine = engine_factory(rbt_invariant)
        t = RedBlackTree()
        for k in range(50):
            t.insert(k)
        assert engine.run(t) is True
        t.corrupt_color(20)
        assert engine.run(t) == rbt_invariant(t) is False
        t.corrupt_color(20)  # flip back
        assert engine.run(t) == rbt_invariant(t) is True

    def test_key_corruption_detected(self, engine_factory):
        engine = engine_factory(rbt_invariant)
        t = RedBlackTree()
        for k in range(0, 60, 2):
            t.insert(k)
        assert engine.run(t) is True
        assert t.corrupt_key(30, 100) is True
        assert engine.run(t) == rbt_invariant(t) is False
        t.corrupt_key(100, 30)
        assert engine.run(t) is True

    def test_distant_insert_reuses_most_of_graph(self, engine_factory):
        engine = engine_factory(rbt_invariant)
        t = RedBlackTree()
        for k in range(0, 4000, 4):
            t.insert(k)
        engine.run(t)
        graph = engine.graph_size
        t.insert(1)  # leaf insert near the minimum
        report = engine.run_with_report(t)
        assert report.result is True
        # A single insert recolors/rotates a bounded region; the vast
        # majority of the graph must be reused, not re-executed.
        assert report.delta["execs"] < graph * 0.3
