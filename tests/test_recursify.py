"""Automatic iterative-to-recursive conversion of checks (paper §2:
"Most iterative invariant checks can be rewritten without loss of clarity
into recursive checks")."""

from __future__ import annotations

import pytest

from repro import CheckFunction, DittoEngine, TrackedArray, TrackedObject
from repro.instrument.recursify import RecursifyError, recursify


class Holder(TrackedObject):
    def __init__(self, values):
        self.items = TrackedArray(values)


def _holder(*values):
    return Holder(list(values))


class TestPredicateForm:
    def _make(self):
        def all_positive(h):
            for i in range(len(h.items)):
                if h.items[i] is not None and h.items[i] <= 0:
                    return False
            return True

        return recursify(all_positive)

    def test_returns_check_function(self):
        entry = self._make()
        assert isinstance(entry, CheckFunction)
        assert entry.name == "all_positive"

    def test_semantics_match_original(self):
        entry = self._make()
        assert entry(_holder(1, 2, 3)) is True
        assert entry(_holder(1, -2, 3)) is False
        assert entry(_holder()) is True
        assert entry(_holder(None, 5)) is True

    def test_incremental_equivalence(self, engine_factory):
        entry = self._make()
        engine = engine_factory(entry)
        h = _holder(*range(1, 40))
        assert engine.run(h) is True
        h.items[20] = -7
        assert engine.run(h) is False
        h.items[20] = 7
        assert engine.run(h) is True

    def test_one_node_per_iteration(self, engine_factory):
        entry = self._make()
        engine = engine_factory(entry)
        h = _holder(*range(1, 101))
        engine.run(h)
        assert engine.graph_size >= 100
        h.items[50] = 99  # still positive
        report = engine.run_with_report(h)
        assert report.delta["execs"] <= 2  # only the touched iteration

    def test_continue_supported(self):
        def skip_nones(h):
            for i in range(len(h.items)):
                if h.items[i] is None:
                    continue
                if h.items[i] < 0:
                    return False
            return True

        entry = recursify(skip_nones)
        assert entry(_holder(None, 1, None, 2)) is True
        assert entry(_holder(None, -1)) is False

    def test_start_offset(self):
        def tail_positive(h, start):
            for i in range(start, len(h.items)):
                if h.items[i] <= 0:
                    return False
            return True

        entry = recursify(tail_positive)
        assert entry(_holder(-5, 1, 2), 1) is True
        assert entry(_holder(-5, 1, 2), 0) is False


class TestAccumulatorForm:
    def _make(self):
        def count_filled(h):
            total = 0
            for i in range(len(h.items)):
                if h.items[i] is not None:
                    total = total + 1
            return total

        return recursify(count_filled)

    def test_semantics(self):
        entry = self._make()
        assert entry(_holder(1, None, 2)) == 2
        assert entry(_holder()) == 0

    def test_incremental_equivalence(self, engine_factory):
        entry = self._make()
        engine = engine_factory(entry)
        h = _holder(*([1] * 30))
        assert engine.run(h) == 30
        h.items[10] = None
        assert engine.run(h) == 29
        h.items[10] = 5
        assert engine.run(h) == 30

    def test_multiple_accumulators(self):
        def count_and_sum(h):
            count = 0
            total = 0
            for i in range(len(h.items)):
                if h.items[i] is not None:
                    count = count + 1
                    total = total + h.items[i]
            return (count, total)

        entry = recursify(count_and_sum)
        assert entry(_holder(2, None, 3)) == (2, 5)

    def test_return_expression_over_accumulator(self, engine_factory):
        def average_is_small(h):
            count = 0
            total = 0
            for i in range(len(h.items)):
                if h.items[i] is not None:
                    count = count + 1
                    total = total + h.items[i]
            return count == 0 or total <= 10 * count

        entry = recursify(average_is_small)
        engine = engine_factory(entry)
        h = _holder(5, 5, 5)
        assert engine.run(h) is True
        h.items[0] = 100
        assert engine.run(h) == entry(h) is False


class TestRejections:
    def _err(self, func):
        with pytest.raises(RecursifyError) as exc_info:
            recursify(func)
        return str(exc_info.value)

    def test_while_rejected(self):
        def loops(h):
            while True:
                return False
            return True

        assert "for-loop" in self._err(loops)

    def test_nested_loops_rejected(self):
        def nested(h):
            for i in range(3):
                for j in range(3):
                    pass
            return True

        assert "nested" in self._err(nested)

    def test_break_rejected(self):
        def breaks(h):
            for i in range(3):
                break
            return True

        assert "break" in self._err(breaks)

    def test_mixing_return_and_accumulators_rejected(self):
        def mixed(h):
            total = 0
            for i in range(3):
                total = total + 1
                if total > 2:
                    return False
            return True

        assert "split the check" in self._err(mixed)

    def test_non_range_iteration_rejected(self):
        def iterates(h):
            for x in h.items:
                pass
            return True

        assert "range" in self._err(iterates)

    def test_missing_trailing_return_rejected(self):
        def no_return(h):
            for i in range(3):
                pass
            x = 1
            return x

        assert "single return" in self._err(no_return)

    def test_step_range_rejected(self):
        def stepped(h):
            for i in range(0, 10, 2):
                pass
            return True

        assert "step" in self._err(stepped)

    def test_uninitialized_accumulator_rejected(self):
        def uninit(h):
            for i in range(3):
                acc = i
            return True

        # `acc` is assigned in the loop but the trailing return is a
        # constant — treated as accumulator form with missing init.
        assert "not initialized" in self._err(uninit)


class TestRecursifyProperties:
    """Machine-generated recursive checks agree with the original loop on
    arbitrary inputs, from scratch and incrementally."""

    def test_equivalence_on_random_arrays(self, engine_factory):
        from hypothesis import given, settings, strategies as st

        def threshold_ok(h, limit):
            for i in range(len(h.items)):
                if h.items[i] is not None and h.items[i] > limit:
                    return False
            return True

        entry = recursify(threshold_ok, name="threshold_ok_prop")
        engine = engine_factory(entry)

        @given(
            st.lists(
                st.one_of(st.none(), st.integers(-50, 50)), max_size=25
            ),
            st.integers(-50, 50),
        )
        @settings(max_examples=60, deadline=None)
        def run(values, limit):
            h = Holder(values)
            assert entry(h, limit) == threshold_ok(h, limit)
            assert engine.run(h, limit) == threshold_ok(h, limit)

        run()

    def test_accumulator_equivalence_under_mutation(self, engine_factory):
        from hypothesis import given, settings, strategies as st

        def summed(h):
            total = 0
            for i in range(len(h.items)):
                if h.items[i] is not None:
                    total = total + h.items[i]
            return total

        entry = recursify(summed, name="summed_prop")
        engine = engine_factory(entry)
        h = Holder([0] * 12)
        assert engine.run(h) == 0

        @given(st.integers(0, 11), st.one_of(st.none(),
                                             st.integers(-20, 20)))
        @settings(max_examples=60, deadline=None)
        def mutate_and_check(index, value):
            h.items[index] = value
            assert engine.run(h) == summed(h)

        mutate_and_check()


class TestRecursifiedUnderGuard:
    def test_engine_validates(self, engine_factory):
        def no_gaps(h):
            for i in range(len(h.items)):
                if h.items[i] is None and i + 1 < len(h.items):
                    if h.items[i + 1] is not None:
                        return False
            return True

        entry = recursify(no_gaps)
        engine = engine_factory(entry)
        h = _holder(1, 2, None, None)
        assert engine.run(h) is True
        engine.validate()
        h.items[1] = None  # gap: None at 1, value at... none after -> ok
        assert engine.run(h) == entry(h)
        engine.validate()
