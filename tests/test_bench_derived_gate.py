"""The BENCH_derived.json regression gate, tested deterministically.

No timing happens here: the gate logic in ``benchmarks/bench_derived.py``
is exercised against hand-built records, and the *committed* record is
checked to satisfy the hard floor the CI gate enforces — so a commit can
never introduce a baseline the gate would immediately reject.
"""

from __future__ import annotations

import importlib.util
import json
import os

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH = os.path.join(_REPO, "benchmarks", "bench_derived.py")
_RECORD = os.path.join(_REPO, "benchmarks", "BENCH_derived.json")

spec = importlib.util.spec_from_file_location("bench_derived", _BENCH)
bench_derived = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_derived)


def _record(speedups):
    return {
        "workloads": {
            name: {"top": {"size": 10000, "steady_speedup": value}}
            for name, value in speedups.items()
        }
    }


HEALTHY = {"vector_sum": 900.0, "heap_min": 1200.0, "table_occupancy": 700.0}


def test_healthy_record_passes_with_and_without_baseline():
    record = _record(HEALTHY)
    assert bench_derived.check_against_baseline(record, None) == []
    assert bench_derived.check_against_baseline(record, record) == []


def test_hard_floor_catches_collapsed_delta_rule():
    broken = _record({**HEALTHY, "heap_min": 1.1})
    failures = bench_derived.check_against_baseline(broken, _record(HEALTHY))
    assert any("hard floor" in f for f in failures)
    assert any("heap_min" in f for f in failures)


def test_retention_catches_halved_speedup_above_floor():
    eroded = _record({**HEALTHY, "table_occupancy": 80.0})  # >10x, <50%
    failures = bench_derived.check_against_baseline(eroded, _record(HEALTHY))
    assert failures == [
        "table_occupancy: steady-state speedup 80.0x lost more than half "
        "of baseline 700.0x"
    ]


def test_missing_workload_is_a_failure():
    partial = _record({"vector_sum": 900.0})
    failures = bench_derived.check_against_baseline(partial, None)
    assert len(failures) == 2  # heap_min and table_occupancy absent


def test_committed_record_satisfies_the_gate():
    """The baseline in the tree must itself clear the hard floor: every
    gated workload at N>=10k with >=10x steady-state speedup."""
    with open(_RECORD) as fh:
        record = json.load(fh)
    assert bench_derived.check_against_baseline(record, None) == []
    for name in bench_derived.GATED_WORKLOADS:
        top = record["workloads"][name]["top"]
        assert top["size"] >= 10_000
        assert top["steady_speedup"] >= bench_derived.MIN_STEADY_SPEEDUP
