"""Fault injection: the engine detects and survives what we break.

Acceptance matrix for the resilience layer: under every injected fault
class — dropped write-barrier entries, corrupted cached return values,
exceptions raised mid-repair — ``engine.run()`` must still return exactly
what a fresh from-scratch run returns, and ``EngineStats`` must record the
fallback with its reason.  Detection is proved by also showing the
*undefended* engine (no paranoia, no policy) serves the wrong answer.

Run with ``--engine-mode=naive`` to prove the same guarantees for the
Figure 6 naive incrementalizer (CI does both).
"""

from __future__ import annotations

import pytest

from repro import (
    DegradationPolicy,
    FaultPlan,
    TrackedObject,
    check,
    inject_faults,
    tracking_state,
)
from repro.resilience import InjectedFault

pytestmark = pytest.mark.resilience


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def flt_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return flt_ordered(e.next)


def build(*values):
    head = None
    for v in reversed(values):
        head = Elem(v, head)
    return head


def paranoid_engine(engine_factory, engine_mode, **policy_kwargs):
    return engine_factory(
        flt_ordered,
        mode=engine_mode,
        paranoia=1,
        degradation=DegradationPolicy(**policy_kwargs),
    )


class TestDroppedWriteBarriers:
    def test_undefended_engine_serves_stale_answer(self, engine_factory,
                                                   engine_mode):
        """Without the resilience layer a lost barrier is silent: this is
        the failure mode the defended tests below must catch."""
        engine = engine_factory(flt_ordered, mode=engine_mode)
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(engine, FaultPlan(drop_writes=5)) as injector:
            head.next.value = 99  # breaks the order, invisibly
            assert injector.writes_dropped == 1  # dropped at barrier time
            stale = engine.run(head)
        assert stale is True           # wrong!
        assert flt_ordered(head) is False

    def test_paranoia_catches_and_recovers(self, engine_factory,
                                           engine_mode):
        engine = paranoid_engine(engine_factory, engine_mode)
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(engine, FaultPlan(drop_writes=5)) as injector:
            head.next.value = 99
            result = engine.run(head)
        assert injector.writes_dropped >= 1
        assert result is False                      # the scratch answer
        assert result == flt_ordered(head)
        assert engine.stats.verify_mismatches == 1
        assert engine.stats.fallback_reasons == {"verify_mismatch": 1}
        event = engine.stats.fallback_events[-1]
        assert event.reason == "verify_mismatch"
        assert event.duration >= 0.0
        assert event.rebuilt  # no cooldown configured: graph rebuilt

    def test_recovered_graph_is_trustworthy(self, engine_factory,
                                            engine_mode):
        engine = paranoid_engine(engine_factory, engine_mode)
        head = build(1, 2, 3, 4)
        engine.run(head)
        with inject_faults(engine, FaultPlan(drop_writes=5)):
            head.next.value = 99
            engine.run(head)
        # Faults disarmed: normal incremental operation resumes and the
        # rebuilt graph tracks new mutations correctly.
        head.next.value = 2
        assert engine.run(head) is True
        assert engine.audit().ok
        assert engine.stats.scratch_fallbacks == 1

    def test_drop_filter_limits_the_fault(self, engine_factory,
                                          engine_mode):
        engine = paranoid_engine(engine_factory, engine_mode)
        head = build(1, 2, 3, 4)
        engine.run(head)
        victim = head.next
        plan = FaultPlan(
            drop_writes=100,
            drop_filter=lambda loc: loc.container is victim,
        )
        with inject_faults(engine, plan) as injector:
            head.value = 0          # logged normally
            victim.value = 99       # dropped
            result = engine.run(head)
        assert injector.writes_dropped == 1
        assert result == flt_ordered(head) is False

    def test_hook_removed_after_block(self, engine_factory, engine_mode):
        engine = engine_factory(flt_ordered, mode=engine_mode)
        head = build(1, 2)
        engine.run(head)
        with inject_faults(engine, FaultPlan(drop_writes=100)):
            pass
        assert tracking_state().write_log.fault_hook is None
        head.value = 5  # barrier works again
        assert engine.run(head) is False

    def test_concurrent_hooks_rejected(self, engine_factory, engine_mode):
        engine = engine_factory(flt_ordered, mode=engine_mode)
        with inject_faults(engine, FaultPlan(drop_writes=1)):
            with pytest.raises(RuntimeError):
                with inject_faults(engine, FaultPlan(drop_writes=1)):
                    pass


class TestCorruptedCachedReturns:
    def test_undefended_engine_serves_corrupted_answer(self, engine_factory,
                                                       engine_mode):
        engine = engine_factory(flt_ordered, mode=engine_mode)
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(
            engine, FaultPlan(corrupt_returns=engine.graph_size)
        ) as injector:
            head.value = 0  # benign: forces an incremental run
            corrupted = engine.run(head)
        assert injector.returns_corrupted == engine.graph_size
        assert corrupted is False      # wrong: the list is ordered
        assert flt_ordered(head) is True

    def test_paranoia_catches_and_recovers(self, engine_factory,
                                           engine_mode):
        engine = paranoid_engine(engine_factory, engine_mode)
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(
            engine, FaultPlan(corrupt_returns=engine.graph_size)
        ) as injector:
            head.value = 0
            result = engine.run(head)
        assert injector.returns_corrupted >= 1
        assert result is True
        assert result == flt_ordered(head)
        assert engine.stats.fallback_reasons == {"verify_mismatch": 1}
        # The rebuilt graph holds clean values: the next run agrees too.
        head.value = -1
        assert engine.run(head) is True
        assert engine.stats.scratch_fallbacks == 1

    def test_custom_corruption(self, engine_factory, engine_mode):
        engine = paranoid_engine(engine_factory, engine_mode)
        head = build(1, 2, 3)
        engine.run(head)
        size_when_armed = engine.graph_size
        plan = FaultPlan(corrupt_returns=99, corrupt_value=lambda v: not v)
        with inject_faults(engine, plan) as injector:
            head.value = 0
            assert engine.run(head) == flt_ordered(head)
        assert injector.returns_corrupted == size_when_armed


class TestExceptionsMidRepair:
    def test_transient_fault_absorbed_by_retry(self, engine_factory,
                                               engine_mode):
        """A one-off crash inside repair is indistinguishable from a §3.5
        misprediction: ditto mode retries and recovers without discarding
        the graph."""
        if engine_mode != "ditto":
            pytest.skip("misprediction retry is a ditto-mode mechanism")
        engine = engine_factory(
            flt_ordered, mode=engine_mode,
            degradation=DegradationPolicy(),
        )
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(
            engine, FaultPlan(raise_on_calls=frozenset({1}))
        ) as injector:
            head.value = 0
            assert engine.run(head) is True
        assert injector.faults_raised == 1
        assert engine.stats.mispredictions >= 1
        assert engine.stats.scratch_fallbacks == 0  # retry was enough

    def test_persistent_fault_degrades_gracefully(self, engine_factory,
                                                  engine_mode):
        engine = engine_factory(
            flt_ordered, mode=engine_mode,
            degradation=DegradationPolicy(),
        )
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(
            engine, FaultPlan.persistent_exceptions()
        ) as injector:
            head.value = 0
            result = engine.run(head)
        assert injector.faults_raised >= 1
        assert result is True
        assert result == flt_ordered(head)
        assert engine.stats.fallback_reasons == {"repair_exception": 1}
        event = engine.stats.fallback_events[-1]
        assert event.rebuilt
        assert "InjectedFault" in event.detail

    def test_fault_during_propagation_phase(self, engine_factory,
                                            engine_mode):
        """Crash the machinery deeper into the run (after some successful
        re-executions) — the degradation layer must still deliver the
        scratch answer."""
        engine = engine_factory(
            flt_ordered, mode=engine_mode,
            degradation=DegradationPolicy(),
        )
        head = build(1, 2, 3, 4, 5, 6, 7, 8)
        assert engine.run(head) is True
        plan = FaultPlan(
            raise_on_calls=frozenset(range(3, 200)),  # first two succeed
        )
        with inject_faults(engine, plan):
            head.next.next.value = 0      # dirty mid-chain
            head.next.next.next.value = 1
            result = engine.run(head)
        assert result == flt_ordered(head)

    def test_without_policy_exception_is_forwarded(self, engine_factory,
                                                   engine_mode):
        """No DegradationPolicy: after §3.5 retries are exhausted the
        injected exception reaches the main program — and the engine is
        still usable afterwards (satellite: exception paths of run())."""
        engine = engine_factory(flt_ordered, mode=engine_mode)
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(engine, FaultPlan.persistent_exceptions()):
            head.value = 0
            with pytest.raises(InjectedFault):
                engine.run(head)
        # The graph was discarded; the next run rebuilds and is correct.
        assert engine.run(head) is True
        assert engine.graph_size > 0
        assert engine.stats.scratch_fallbacks == 0
        if engine_mode == "ditto":
            assert engine.stats.mispredictions >= 1
        assert engine.audit().ok
