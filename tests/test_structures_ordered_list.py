"""OrderedIntList semantics + incremental behaviour of ``is_ordered``
(paper §2 / Figure 1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures import IntListElem, OrderedIntList, is_ordered


class TestStructure:
    def test_insert_keeps_sorted(self):
        lst = OrderedIntList()
        for v in [5, 1, 3, 2, 4]:
            lst.insert(v)
        assert lst.to_list() == [1, 2, 3, 4, 5]
        assert len(lst) == 5

    def test_duplicates_allowed(self):
        lst = OrderedIntList()
        for v in [2, 2, 1]:
            lst.insert(v)
        assert lst.to_list() == [1, 2, 2]

    def test_delete(self):
        lst = OrderedIntList()
        for v in [1, 2, 3]:
            lst.insert(v)
        assert lst.delete(2) is True
        assert lst.delete(99) is False
        assert lst.to_list() == [1, 3]
        assert len(lst) == 2

    def test_delete_head(self):
        lst = OrderedIntList()
        for v in [1, 2]:
            lst.insert(v)
        assert lst.delete(1)
        assert lst.to_list() == [2]

    def test_delete_first(self):
        lst = OrderedIntList()
        for v in [3, 1, 2]:
            lst.insert(v)
        assert lst.delete_first() == 1
        assert lst.delete_first() == 2
        assert lst.delete_first() == 3
        assert lst.delete_first() is None

    def test_corrupt(self):
        lst = OrderedIntList()
        for v in [1, 2, 3]:
            lst.insert(v)
        lst.corrupt(1, 99)
        assert lst.to_list() == [1, 99, 3]
        with pytest.raises(IndexError):
            lst.corrupt(5, 0)

    @given(st.lists(st.integers(-100, 100), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_matches_sorted_model(self, values):
        lst = OrderedIntList()
        for v in values:
            lst.insert(v)
        assert lst.to_list() == sorted(values)
        assert bool(is_ordered(lst.head))


class TestInvariantCheck:
    def test_detects_disorder(self):
        head = IntListElem(5, IntListElem(1))
        assert is_ordered(head) is False

    def test_empty_and_singleton(self):
        assert is_ordered(None) is True
        assert is_ordered(IntListElem(1)) is True

    def test_incremental_insert_is_constant_work(self, engine_factory):
        engine = engine_factory(is_ordered)
        lst = OrderedIntList()
        for v in range(0, 1000, 2):
            lst.insert(v)
        engine.run(lst.head)
        lst.insert(501)
        report = engine.run_with_report(lst.head)
        assert report.result is True
        assert report.delta["execs"] <= 3

    def test_incremental_mixed_workload_agrees(self, engine_factory):
        engine = engine_factory(is_ordered)
        lst = OrderedIntList()
        rng = random.Random(11)
        values = []
        for _ in range(50):
            v = rng.randrange(500)
            lst.insert(v)
            values.append(v)
        engine.run(lst.head)
        for _ in range(120):
            roll = rng.random()
            if roll < 0.5 or not values:
                v = rng.randrange(500)
                lst.insert(v)
                values.append(v)
            elif roll < 0.75:
                v = values.pop(rng.randrange(len(values)))
                lst.delete(v)
            else:
                lst.delete_first()
                values.remove(min(values))
            assert engine.run(lst.head) == is_ordered(lst.head) is True

    def test_corruption_detected_and_repaired(self, engine_factory):
        engine = engine_factory(is_ordered)
        lst = OrderedIntList()
        for v in range(20):
            lst.insert(v)
        assert engine.run(lst.head) is True
        lst.corrupt(10, -1)
        assert engine.run(lst.head) is False
        lst.corrupt(10, 10)
        assert engine.run(lst.head) is True
