"""Observability overhead contract: a disabled engine never builds trace
events, and tracing changes no engine behaviour.

The hot-path promise (ISSUE: near-zero overhead when disabled) is proved
deterministically, not with a timing assertion: the engine checks one
boolean before constructing any event, so with the default
:class:`~repro.obs.NullSink` the sink's ``events_emitted`` counter must
stay exactly zero through a long soak — if any hot path allocated an
event, the counter would tick.
"""

from __future__ import annotations

import random

from repro import DittoEngine
from repro.core.stats import PHASES
from repro.obs import NullSink, RingBufferSink
from repro.structures import OrderedIntList, is_ordered

SOAK_SIZE = 1000
SOAK_MODS = 120


def _build_list(size: int) -> OrderedIntList:
    lst = OrderedIntList()
    for v in range(size):
        lst.insert(v)
    return lst


def _soak(engine: DittoEngine, lst: OrderedIntList, seed: int) -> dict:
    """Identically-seeded mutate+check soak; returns the counter deltas."""
    rng = random.Random(seed)
    engine.run(lst.head)
    before = engine.stats.snapshot()
    values = list(range(SOAK_SIZE))
    for _ in range(SOAK_MODS):
        if rng.random() < 0.6 or not values:
            v = rng.randrange(10 * SOAK_SIZE)
            lst.insert(v)
            values.append(v)
        else:
            lst.delete(values.pop(rng.randrange(len(values))))
        assert engine.run(lst.head) is True
    return engine.stats.delta(before)


class TestNullSinkSoak:
    def test_disabled_engine_emits_nothing(self):
        sink = NullSink()
        engine = DittoEngine(is_ordered, trace_sink=sink,
                             recursion_limit=None)
        try:
            assert engine.tracing is False
            delta = _soak(engine, _build_list(SOAK_SIZE), seed=0xBEEF)
        finally:
            engine.close()
        # The soak exercised the hot paths...
        assert delta["incremental_runs"] == SOAK_MODS
        assert delta["dirty_execs"] > 0
        assert delta["reuses"] > 0
        # ...and not one event object was built for the default sink.
        assert sink.events_emitted == 0

    def test_default_sink_is_null(self):
        engine = DittoEngine(is_ordered, recursion_limit=None)
        try:
            assert isinstance(engine.trace_sink, NullSink)
            assert engine.tracing is False
        finally:
            engine.close()


class TestTracingEquivalence:
    def test_tracing_changes_no_engine_behaviour(self):
        """The same seeded soak, traced and untraced, must account the
        same work — tracing is observation, not interference."""
        null_sink = NullSink()
        ring_sink = RingBufferSink(capacity=100_000)
        deltas = {}
        for name, sink in (("null", null_sink), ("ring", ring_sink)):
            engine = DittoEngine(is_ordered, trace_sink=sink,
                                 recursion_limit=None)
            try:
                deltas[name] = _soak(
                    engine, _build_list(SOAK_SIZE), seed=0xCAFE
                )
            finally:
                engine.close()
        assert deltas["null"] == deltas["ring"]
        assert null_sink.events_emitted == 0
        assert ring_sink.events_emitted > 0
        span_names = {e.name for e in ring_sink.spans()}
        assert {"barrier_drain", "dirty_mark", "exec"} <= span_names


class TestPhaseTimes:
    def test_report_times_are_sane(self):
        engine = DittoEngine(is_ordered, recursion_limit=None)
        try:
            lst = _build_list(50)
            engine.run(lst.head)
            lst.insert(25)
            report = engine.run_with_report(lst.head)
        finally:
            engine.close()
        assert report.duration > 0
        assert report.phase_times
        assert set(report.phase_times) <= set(PHASES)
        assert all(v >= 0 for v in report.phase_times.values())
        # The phases partition the run: their sum cannot meaningfully
        # exceed the run's wall clock (allow scheduler jitter).
        assert sum(report.phase_times.values()) <= report.duration + 0.05

    def test_lifetime_timers_accumulate(self):
        engine = DittoEngine(is_ordered, recursion_limit=None)
        try:
            lst = _build_list(50)
            engine.run(lst.head)
            assert engine.stats.time_exec > 0
            first = engine.stats.time_exec
            lst.insert(25)
            engine.run(lst.head)
            assert engine.stats.time_exec > first
            timers = engine.stats.timers()
            assert set(timers) == set(PHASES)
        finally:
            engine.close()
