"""Graceful degradation: cooldown, backoff, give-up, and exception paths.

These tests drive the :class:`DegradationPolicy` ladder end to end — a
trust-losing event discards the graph transactionally, the engine serves
from-scratch answers for the configured window, and incremental mode
resumes afterwards — and pin down which exceptions are *never* recovered
from (genuine check failures, unrecoverable engine errors).

Run with ``--engine-mode=naive`` to exercise the Figure 6 naive
incrementalizer (CI does both).
"""

from __future__ import annotations

import pytest

from repro import (
    CyclicCheckError,
    DegradationPolicy,
    FaultPlan,
    TrackedObject,
    check,
    inject_faults,
)

pytestmark = pytest.mark.resilience


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def deg_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return deg_ordered(e.next)


@check
def deg_sum_positive(e):
    if e is None:
        return True
    if e.value < 0:  # raises TypeError when value is None
        return False
    return deg_sum_positive(e.next)


def build(*values):
    head = None
    for v in reversed(values):
        head = Elem(v, head)
    return head


def splice(at, *values):
    """Insert a chain of fresh elements after ``at`` — a structural repair
    that executes one new node per element (~5 steps each), used to push
    an incremental run over a step limit that small repairs stay under."""
    chain = build(*values)
    tail = chain
    while tail.next is not None:
        tail = tail.next
    tail.next = at.next
    at.next = chain


class TestPolicyObject:
    def test_cooldown_backoff_progression(self):
        policy = DegradationPolicy(cooldown_runs=2, backoff_factor=3.0)
        assert [policy.cooldown_for(n) for n in (1, 2, 3)] == [2, 6, 18]

    def test_cooldown_capped(self):
        policy = DegradationPolicy(cooldown_runs=100, max_cooldown_runs=150)
        assert policy.cooldown_for(2) == 150

    def test_no_cooldown_by_default(self):
        assert DegradationPolicy().cooldown_for(5) == 0

    def test_give_up_returns_inf(self):
        policy = DegradationPolicy(cooldown_runs=1, give_up_after=3)
        assert policy.cooldown_for(2) == 2
        assert policy.cooldown_for(3) == float("inf")

    def test_give_up_works_without_cooldown(self):
        policy = DegradationPolicy(give_up_after=1)
        assert policy.cooldown_for(1) == float("inf")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cooldown_runs": -1},
            {"backoff_factor": 0.5},
            {"max_cooldown_runs": 0},
            {"give_up_after": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DegradationPolicy(**kwargs)


class TestStepLimitFallback:
    def test_step_limit_rebuilds_without_policy(self, engine_factory,
                                                engine_mode):
        """The §3.5 step-limit remedy predates the resilience layer and
        stays always-on; it now also leaves a FallbackEvent behind."""
        engine = engine_factory(deg_ordered, mode=engine_mode, step_limit=2)
        head = build(1, 2, 3, 4, 5, 6)
        assert engine.run(head) is True  # full run: limit not applied
        head.next.value = 0
        assert engine.run(head) is False
        assert engine.stats.scratch_fallbacks == 1
        assert engine.stats.fallback_reasons == {"step_limit": 1}
        event = engine.stats.fallback_events[0]
        assert event.reason == "step_limit"
        assert event.rebuilt
        assert event.cooldown == 0
        assert "StepLimitExceeded" in event.detail
        # The rebuild left a working graph behind.
        assert engine.graph_size > 0
        assert engine.audit().ok

    def test_step_limit_with_cooldown_window(self, engine_factory,
                                             engine_mode):
        # Limit 20: single-node repairs (~6-12 steps) stay incremental;
        # the four-element splice (~34 steps) trips the fallback.
        engine = engine_factory(
            deg_ordered, mode=engine_mode, step_limit=20,
            degradation=DegradationPolicy(cooldown_runs=2),
        )
        head = build(1, 2, 3, 4, 5, 6)
        assert engine.run(head) is True
        splice(head, 1, 1, 1, 1)
        assert engine.run(head) is True  # fallback: scratch answer
        event = engine.stats.fallback_events[0]
        assert not event.rebuilt  # cooldown > 0: rebuild deferred
        assert event.cooldown == 2
        assert engine.graph_size == 0
        # Two degraded runs served by the uninstrumented check.
        head.next.value = 0
        assert engine.run(head) is False
        head.next.value = 1
        assert engine.run(head) is True
        assert engine.stats.degraded_runs == 2
        # Cooldown over: the next run rebuilds and incremental resumes.
        full_runs = engine.stats.full_runs
        assert engine.run(head) is True
        assert engine.stats.full_runs == full_runs + 1
        assert engine.graph_size > 0
        head.value = 0
        assert engine.run(head) is True  # small repair: under the limit
        assert engine.stats.scratch_fallbacks == 1  # no repeat episode
        assert engine.audit().ok

    def test_degraded_runs_keep_write_log_compacted(self, engine_factory,
                                                    engine_mode):
        from repro import tracking_state

        engine = engine_factory(
            deg_ordered, mode=engine_mode, step_limit=2,
            degradation=DegradationPolicy(cooldown_runs=3),
        )
        head = build(1, 2, 3, 4, 5, 6)
        engine.run(head)
        head.next.value = 0
        engine.run(head)  # fallback, cooldown starts
        head.value = 7
        engine.run(head)  # degraded
        assert not tracking_state().write_log.peek(engine._log_cid)


class TestBackoffAndGiveUp:
    def test_rebuild_failure_escalates_cooldown(self, engine_factory,
                                                engine_mode):
        """When even the fallback rebuild raises, the engine backs off as
        if it had failed twice (the environment is clearly hostile)."""
        engine = engine_factory(
            deg_ordered, mode=engine_mode,
            degradation=DegradationPolicy(cooldown_runs=1,
                                          backoff_factor=3.0),
        )
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(engine, FaultPlan.persistent_exceptions()):
            head.value = 0
            # cooldown_runs=1 -> first fallback would normally wait 1 run;
            # escalation computes cooldown_for(2) = 3 instead... except the
            # first fallback already enters the cooldown window (1 run)
            # before any rebuild is attempted.
            assert engine.run(head) is True
        event = engine.stats.fallback_events[0]
        assert event.reason == "repair_exception"
        assert not event.rebuilt
        assert event.cooldown == 1

    def test_rebuild_failure_without_cooldown(self, engine_factory,
                                              engine_mode):
        """cooldown_runs=0 forces a rebuild attempt inside the fallback;
        when the fault is persistent the rebuild fails too and the answer
        comes from the uninstrumented check."""
        engine = engine_factory(
            deg_ordered, mode=engine_mode,
            degradation=DegradationPolicy(),
        )
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True

        # Arm a fault that also fires during full (rebuild) runs by
        # wrapping the compiled entry directly.
        uid = engine.entry.uid
        real = engine._compiled[uid]
        calls = {"n": 0}

        def hostile(*a):
            calls["n"] += 1
            raise RuntimeError("hostile environment")

        head.value = 0
        engine._compiled[uid] = hostile
        try:
            result = engine.run(head)
        finally:
            engine._compiled[uid] = real
        assert result is True  # the *uninstrumented* check still works
        event = engine.stats.fallback_events[0]
        assert event.reason == "repair_exception"
        assert not event.rebuilt
        assert calls["n"] >= 2  # incremental attempt(s) + rebuild attempt
        assert engine.graph_size == 0
        # Environment healed: incremental mode comes back on the next run.
        assert engine.run(head) is True
        assert engine.graph_size > 0

    def test_give_up_after_stays_in_scratch_mode(self, engine_factory,
                                                 engine_mode):
        engine = engine_factory(
            deg_ordered, mode=engine_mode,
            degradation=DegradationPolicy(cooldown_runs=1, give_up_after=1),
        )
        head = build(1, 2, 3, 4)
        assert engine.run(head) is True
        with inject_faults(engine, FaultPlan.persistent_exceptions()):
            head.value = 0
            assert engine.run(head) is True
        assert engine.stats.fallback_events[0].cooldown == -1  # permanent
        # Long after the fault is gone, the engine still refuses to trust
        # itself: every run is scratch, the graph stays empty.
        for i in range(5):
            head.value = -i
            assert engine.run(head) is True
        assert engine.stats.degraded_runs == 5
        assert engine.graph_size == 0

    def test_clean_run_resets_the_streak(self, engine_factory, engine_mode):
        engine = engine_factory(
            deg_ordered, mode=engine_mode, step_limit=20,
            degradation=DegradationPolicy(cooldown_runs=1,
                                          backoff_factor=4.0),
        )
        head = build(1, 2, 3, 4, 5, 6)
        engine.run(head)
        splice(head, 1, 1, 1, 1)
        engine.run(head)          # fallback #1: cooldown 1
        engine.run(head)          # degraded
        engine.run(head)          # clean full rebuild -> streak reset
        head.value = 0
        engine.run(head)          # incremental: small repair, under limit
        splice(head, 0, 0, 0, 0)
        engine.run(head)          # fallback #2 — but streak was reset:
        # cooldown is 1 again, not backoff_factor * 1 = 4.
        assert [e.cooldown for e in engine.stats.fallback_events] == [1, 1]


class TestNeverRecovered:
    def test_cyclic_check_propagates_despite_policy(self, engine_factory,
                                                    engine_mode):
        """A cyclic structure would make the uninstrumented check diverge;
        recovery by re-running from scratch is meaningless, so the error
        always reaches the main program."""
        engine = engine_factory(
            deg_ordered, mode=engine_mode,
            degradation=DegradationPolicy(cooldown_runs=4),
        )
        # All-equal values: no out-of-order pair ever short-circuits the
        # recursion, so the traversal walks the cycle back into an
        # invocation that is still in progress.
        head = build(2, 2, 2)
        head.next.next.next = head
        with pytest.raises(CyclicCheckError):
            engine.run(head)
        assert engine.stats.scratch_fallbacks == 0
        # Unbreaking the structure brings the engine straight back.
        head.next.next.next = None
        assert engine.run(head) is True
        assert engine.stats.degraded_runs == 0

    def test_genuine_check_failure_propagates(self, engine_factory,
                                              engine_mode):
        """The check itself crashes on the data (None < 0): incremental,
        rebuild, and uninstrumented scratch all raise — the paper requires
        the failure to reach the main program, not be swallowed."""
        engine = engine_factory(
            deg_sum_positive, mode=engine_mode,
            degradation=DegradationPolicy(),
        )
        head = build(1, 2, 3)
        assert engine.run(head) is True
        head.next.value = None
        with pytest.raises(TypeError):
            engine.run(head)
        # The engine remains usable once the data is fixed (satellite:
        # exception paths of run()).
        head.next.value = 2
        assert engine.run(head) is True
        assert engine.audit().ok

    def test_fallback_on_exception_false_forwards(self, engine_factory,
                                                  engine_mode):
        from repro.resilience import InjectedFault

        engine = engine_factory(
            deg_ordered, mode=engine_mode,
            degradation=DegradationPolicy(fallback_on_exception=False),
        )
        head = build(1, 2, 3)
        assert engine.run(head) is True
        with inject_faults(engine, FaultPlan.persistent_exceptions()):
            head.value = 0
            with pytest.raises(InjectedFault):
                engine.run(head)
        assert engine.stats.scratch_fallbacks == 0
        assert engine.run(head) is True  # usable after the raise
