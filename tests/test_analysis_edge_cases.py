"""Additional static-analysis edge cases beyond the core rule tests."""

from __future__ import annotations

import pytest

from repro import CheckRestrictionError, check
from repro.instrument.analysis import analyze_check


def _violations(func) -> str:
    with pytest.raises(CheckRestrictionError) as exc_info:
        analyze_check(func)
    return "\n".join(exc_info.value.violations)


class TestControlDependenceDepth:
    def test_while_under_tainted_if(self):
        @check
        def bad(n):
            if n is None:
                return 0
            t = bad(n.next)
            if t > 0:
                i = 0
                while i < 3:
                    i = i + 1
            return 1

        assert "loop" in _violations(bad)

    def test_for_under_tainted_if(self):
        @check
        def bad2(n):
            if n is None:
                return 0
            t = bad2(n.next)
            total = 0
            if t > 0:
                for i in range(3):
                    total = total + 1
            return total

        assert "loop bounds" in _violations(bad2)

    def test_nested_untainted_guards_ok(self):
        @check
        def fine(n):
            if n is None:
                return True
            if n.value > 0:
                if n.flag:
                    return fine(n.next)
            return True

        assert analyze_check(fine).ok

    def test_walrus_taint(self):
        @check
        def walrus(n):
            if n is None:
                return 0
            if (t := walrus(n.next)) > 0:
                return t
            return 0

        # The walrus taints t, which only flows into returns: fine.
        assert analyze_check(walrus).ok

    def test_walrus_taint_reaching_call(self):
        @check
        def walrus_bad(n):
            if n is None:
                return 0
            t = (walrus_bad(n.next) + 1)
            return walrus_bad_helper(t)  # noqa: F821

        assert "call argument depends" in _violations(walrus_bad)


class TestTaintThroughBranches:
    def test_taint_union_of_branches(self):
        @check
        def branchy(n):
            if n is None:
                return 0
            if n.value > 0:
                t = branchy(n.next)
            else:
                t = 0
            while t > 0:  # t may hold a callee value on one path
                t = 0
            return 1

        assert "loop conditional" in _violations(branchy)

    def test_boolop_all_clean_ok(self):
        @check
        def cleanly(n):
            if n is None:
                return True
            b1 = cleanly(n.next)
            b2 = cleanly(None)
            return b1 and b2 and n.value > 0

        assert analyze_check(cleanly).ok

    def test_or_short_circuit_flagged(self):
        @check
        def bad_or(n):
            if n is None:
                return False
            found = bad_or(n.next)
            return found or bad_or(None)

        assert "short-circuit" in _violations(bad_or)


class TestDocstringsAndTrivia:
    def test_docstring_allowed(self):
        @check
        def documented(n):
            """This docstring must not confuse the analysis."""
            return n is None

        analysis = analyze_check(documented)
        assert analysis.ok

    def test_pass_and_assert_allowed(self):
        @check
        def asserts(n):
            assert n is None or n is not None
            if n is None:
                pass
            return True

        assert analyze_check(asserts).ok

    def test_raise_allowed(self):
        @check
        def raises(n):
            if n is None:
                raise ValueError("empty")
            return True

        assert analyze_check(raises).ok

    def test_fstring_allowed(self):
        @check
        def fstrings(n):
            if n is None:
                return ""
            return f"value={n.value}"

        analysis = analyze_check(fstrings)
        assert analysis.ok
        assert "value" in analysis.fields_read
