"""Static analysis of check functions: the side-effect rules of
Definition 2, the callee-return-value restriction of §3.5, and field
collection for the write-barrier optimization of §4."""

from __future__ import annotations

import pytest

from repro import CheckRestrictionError, check
from repro.instrument.analysis import analyze_check


def _violations(func) -> str:
    """Analyze a @check and return the joined violation text."""
    with pytest.raises(CheckRestrictionError) as exc_info:
        analyze_check(func)
    return "\n".join(exc_info.value.violations)


# --- Admissible checks -------------------------------------------------------

@check
def ok_recursive(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return ok_recursive(e.next)


@check
def ok_two_results(n):
    if n is None:
        return True
    b1 = ok_two_results(n.left)
    b2 = ok_two_results(n.right)
    return b1 and b2


@check
def ok_tainted_in_return_if(n):
    if n is None:
        return 0
    left = ok_tainted_in_return_if(n.left)
    right = ok_tainted_in_return_if(n.right)
    if left != right or left == -1:
        return -1
    return left + 1


@check
def ok_untainted_guarded_call(e, i):
    if e is None:
        return True
    return e.value == i and ok_untainted_guarded_call(e.next, i)


@check
def ok_for_range(a, n):
    total = 0
    for i in range(n):
        total = total + a.base
    return total == 0


@check
def ok_while_untainted(n):
    i = 0
    while i < 3:
        i = i + 1
    return i == 3


class TestAdmissible:
    @pytest.mark.parametrize(
        "func",
        [ok_recursive, ok_two_results, ok_tainted_in_return_if,
         ok_untainted_guarded_call, ok_for_range, ok_while_untainted],
    )
    def test_passes(self, func):
        assert analyze_check(func).ok


class TestFieldCollection:
    def test_fields_read(self):
        analysis = analyze_check(ok_recursive)
        assert analysis.fields_read == {"next", "value"}

    def test_called_names(self):
        analysis = analyze_check(ok_recursive)
        assert "ok_recursive" in analysis.called_names

    def test_index_and_len_flags(self):
        @check
        def reads_array(a, i):
            if i >= len(a):
                return True
            return a[i] is None

        analysis = analyze_check(reads_array)
        assert analysis.reads_indices
        assert analysis.reads_len

    def test_globals_read(self):
        @check
        def reads_global(n):
            return n is SOME_GLOBAL  # noqa: F821

        analysis = analyze_check(reads_global)
        assert "SOME_GLOBAL" in analysis.globals_read


# --- Side-effect violations ---------------------------------------------------

class TestSideEffects:
    def test_attribute_store(self):
        @check
        def writes_heap(e):
            e.value = 1
            return True

        assert "side effect" in _violations(writes_heap)

    def test_subscript_store(self):
        @check
        def writes_slot(a):
            a[0] = 1
            return True

        assert "side effect" in _violations(writes_slot)

    def test_augassign_to_heap(self):
        @check
        def augments(e):
            e.value += 1
            return True

        assert "side effect" in _violations(augments)

    def test_global_statement(self):
        @check
        def declares_global(e):
            global SOMETHING
            return True

        assert "global" in _violations(declares_global)

    def test_delete(self):
        @check
        def deletes(e):
            x = 1
            del x
            return True

        assert "del" in _violations(deletes)

    def test_list_allocation(self):
        @check
        def allocates(e):
            xs = [1, 2]
            return True

        assert "mutable" in _violations(allocates)

    def test_dict_allocation(self):
        @check
        def allocates(e):
            xs = {"a": 1}
            return True

        assert "mutable" in _violations(allocates)

    def test_comprehension(self):
        @check
        def comprehends(e):
            return all(x for x in range(3))

        assert "not allowed" in _violations(comprehends)

    def test_lambda(self):
        @check
        def lambdas(e):
            f = lambda x: x  # noqa: E731
            return f(1) == 1

        assert "lambda" in _violations(lambdas)

    def test_nested_def(self):
        @check
        def nests(e):
            def inner():
                return 1

            return inner() == 1

        assert "nested" in _violations(nests)

    def test_try_block(self):
        @check
        def tries(e):
            try:
                return True
            except Exception:
                return False

        assert "try" in _violations(tries)

    def test_import(self):
        @check
        def imports(e):
            import os

            return True

        assert "import" in _violations(imports)

    def test_membership_test(self):
        @check
        def membership(e, xs):
            return e in xs

        assert "membership" in _violations(membership)

    def test_yield(self):
        @check
        def generator(e):
            yield True

        assert "generator" in _violations(generator)


# --- §3.5 restriction violations ----------------------------------------------

class TestOptimisticRestriction:
    def test_while_test_tainted(self):
        @check
        def bad_loop(n):
            flag = bad_loop(n)
            while flag:
                flag = False
            return True

        assert "loop conditional" in _violations(bad_loop)

    def test_for_bound_tainted(self):
        @check
        def bad_for(n):
            count = bad_for(n)
            total = 0
            for i in range(count):
                total = total + 1
            return total

        assert "loop bounds" in _violations(bad_for)

    def test_call_arg_tainted(self):
        @check
        def bad_arg(n):
            if n is None:
                return 0
            d = bad_arg(n.next)
            return bad_arg_helper(d)

        assert "call argument depends" in _violations(bad_arg)

    def test_call_arg_directly_nested(self):
        @check
        def bad_nested(n):
            if n is None:
                return 0
            return bad_nested(bad_nested(n.next))

        assert "call argument depends" in _violations(bad_nested)

    def test_short_circuit_call_after_check_call(self):
        @check
        def bad_and(n):
            if n is None:
                return True
            return bad_and(n.left) and bad_and(n.right)

        assert "short-circuit" in _violations(bad_and)

    def test_call_under_tainted_if(self):
        @check
        def bad_guarded(n):
            if n is None:
                return True
            ok = bad_guarded(n.next)
            if ok:
                return bad_guarded(None)
            return False

        assert "control-dependent" in _violations(bad_guarded)

    def test_call_in_tainted_ifexp(self):
        @check
        def bad_ifexp(n):
            if n is None:
                return True
            ok = bad_ifexp(n.next)
            return bad_ifexp(None) if ok else False

        assert "control-dependent" in _violations(bad_ifexp)

    def test_taint_flows_through_assignment(self):
        @check
        def bad_flow(n):
            if n is None:
                return 0
            a = bad_flow(n.next)
            b = a + 1
            c = b * 2
            while c > 0:
                c = 0
            return 1

        assert "loop conditional" in _violations(bad_flow)

    def test_taint_laundered_by_reassignment(self):
        @check
        def ok_relaundered(n):
            if n is None:
                return 0
            a = ok_relaundered(n.next)
            a = 0  # clean re-assignment kills the taint
            while a > 0:
                a = 0
            return 1

        assert analyze_check(ok_relaundered).ok

    def test_taint_in_guarded_assignment(self):
        @check
        def bad_guarded_assign(n):
            if n is None:
                return 0
            t = bad_guarded_assign(n.next)
            x = 0
            if t > 0:
                x = 1  # control-dependent on taint
            while x > 0:
                x = 0
            return 1

        assert "loop conditional" in _violations(bad_guarded_assign)


# --- Signature restrictions -----------------------------------------------------

class TestSignature:
    def test_default_args_rejected(self):
        @check
        def defaulted(e, k=1):
            return True

        assert "defaults" in _violations(defaulted)

    def test_varargs_rejected(self):
        @check
        def star(*args):
            return True

        assert "args" in _violations(star)

    def test_kwonly_rejected(self):
        @check
        def kw(e, *, k):
            return True

        assert "keyword-only" in _violations(kw)

    def test_keyword_call_rejected(self):
        @check
        def calls_kw(e):
            return helperish(x=1)  # noqa: F821

        assert "keyword arguments" in _violations(calls_kw)
